package linalg

import (
	"context"
	"math"
	"sync"

	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// This file implements the values-only spectral fast path: the task-machine
// affinity measure (TMA) needs only the singular values σ of the
// standard-form ECS matrix, never its singular vectors, so paying for a full
// SVD per evaluation is waste. Instead the m×n input is reduced to its
// min-dimension Gram matrix G (σ² are G's eigenvalues), G is
// Householder-tridiagonalized, and the tridiagonal eigenvalues are extracted
// with the implicit-shift QL iteration — O(k³) on k = min(m, n) with no
// vector accumulation, versus the O(m·n·k) per sweep × many sweeps of the
// one-sided Jacobi SVD.
//
// The trade: forming G squares the condition number, so singular values below
// about √ε·σ₁ carry halved relative precision, and eigenvalues within
// k·ε·σ₁² of zero are indistinguishable from rank deficiency. Both effects
// are handled by clamping: eigenvalues below the k·ε·λmax noise floor (in
// particular every tiny negative produced by roundoff on rank-deficient
// inputs) are flushed to exact zeros before the square root, so the path can
// never emit NaN. For TMA this is the right trade — the standard form pins
// σ₁ = 1 and the measure averages O(1) values — while consumers that need
// factors (affinity groups, the ablation study) keep the Jacobi/Golub-Reinsch
// paths, which also serve as the accuracy oracle in tests.

const macheps = 2.220446049250313e-16

// Workspace carries the scratch state of the values-only spectral pipeline —
// the Gram matrix and the tridiagonal diagonals — so sweeps that evaluate
// thousands of spectra reuse one allocation set. A Workspace is not safe for
// concurrent use; use one per goroutine (GetWorkspace/PutWorkspace pool them
// across trials).
type Workspace struct {
	gram *matrix.Dense
	d, e []float64
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{gram: matrix.New(0, 0)} }

var workspacePool = sync.Pool{New: func() any { return NewWorkspace() }}

// GetWorkspace fetches a spectral workspace from the shared pool.
func GetWorkspace() *Workspace { return workspacePool.Get().(*Workspace) }

// PutWorkspace returns a workspace to the shared pool. The caller must not
// use ws afterwards.
func PutWorkspace(ws *Workspace) { workspacePool.Put(ws) }

// vecs returns the workspace's diagonal and off-diagonal buffers at length n.
func (ws *Workspace) vecs(n int) (d, e []float64) {
	if cap(ws.d) < n {
		ws.d = make([]float64, n)
		ws.e = make([]float64, n)
	}
	return ws.d[:n], ws.e[:n]
}

// SingularValues returns the singular values of a in descending order via the
// Gram + tridiagonal QL fast path. ws may be nil, in which case a pooled
// workspace is used for the duration of the call. The result is freshly
// allocated and owned by the caller.
func SingularValues(a *matrix.Dense, ws *Workspace) []float64 {
	return AppendSingularValues(nil, a, ws)
}

// SingularValuesCtx is SingularValues with stage tracing and a
// context-scoped worker budget: when ctx carries an obs.Trace, the Gram
// formation and the tridiagonal eigensolve are recorded as spans ("gram" or
// "gram_parallel" depending on the path taken, and "eigensolve"), and when
// the problem's short side reaches spectralParMin the pipeline fans out over
// parallel.WorkersFrom(ctx) goroutines (GOMAXPROCS when the context carries
// no budget). The parallel path is bit-identical to the serial one, so the
// budget only affects latency.
func SingularValuesCtx(ctx context.Context, a *matrix.Dense, ws *Workspace) []float64 {
	return appendSingularValuesWorkers(obs.FromContext(ctx), nil, a, ws, parallel.WorkersFrom(ctx))
}

// AppendSingularValues appends the descending singular values of a to dst
// and returns the extended slice, so hot loops can reuse one result buffer
// across calls (pass dst[:0] to overwrite). ws may be nil (a pooled
// workspace is borrowed).
func AppendSingularValues(dst []float64, a *matrix.Dense, ws *Workspace) []float64 {
	return appendSingularValuesWorkers(nil, dst, a, ws, 1)
}

// appendSingularValuesWorkers is the shared implementation; tr may be nil
// (the untraced fast path — span calls on a nil trace are free). workers is
// a request, resolved against the size threshold by effectiveWorkers: 1
// forces the serial pipeline, 0 means GOMAXPROCS for large problems.
func appendSingularValuesWorkers(tr *obs.Trace, dst []float64, a *matrix.Dense, ws *Workspace, workers int) []float64 {
	m, n := a.Dims()
	k := minInt(m, n)
	if k == 0 {
		return dst
	}
	workers = effectiveWorkers(k, workers)
	start := len(dst)
	if ws == nil {
		ws = GetWorkspace()
		defer PutWorkspace(ws)
	}
	var sp obs.Span
	var g *matrix.Dense
	if workers > 1 {
		sp = tr.StartSpan("gram_parallel")
		g = matrix.GramIntoPar(ws.gram.Reset(k, k), a, workers)
	} else {
		sp = tr.StartSpan("gram")
		g = matrix.GramInto(ws.gram.Reset(k, k), a)
	}
	sp.End()
	sp = tr.StartSpan("eigensolve")
	d, e := ws.vecs(k)
	if workers > 1 {
		tridiagonalizeWorkers(g, d, e, workers)
	} else {
		tridiagonalize(g, d, e)
	}
	if !tqlImplicitShift(d, e) {
		// The QL budget essentially never trips; fall back to the Jacobi SVD
		// oracle rather than return a partial spectrum.
		res := append(dst, SVDJacobi(a).S...)
		sp.End()
		return res
	}
	// d now holds the eigenvalues of G, unordered. Anything at or below the
	// roundoff noise floor of the Gram formation — including the small
	// negatives rank-deficient inputs produce — is an exact zero of the
	// underlying spectrum; clamp before the square root so σ is never NaN.
	lmax := 0.0
	for _, v := range d {
		if v > lmax {
			lmax = v
		}
	}
	floor := float64(k) * macheps * lmax
	for _, v := range d {
		if v <= floor {
			v = 0
		}
		dst = append(dst, math.Sqrt(v))
	}
	sortDescending(dst[start:])
	sp.End()
	return dst
}

// sortDescending sorts x in place without allocating; the spectra here are
// tiny (k = min tasks/machines), so insertion sort beats sort.Slice and its
// closure allocation.
func sortDescending(x []float64) {
	for i := 1; i < len(x); i++ {
		v := x[i]
		j := i - 1
		for j >= 0 && x[j] < v {
			x[j+1] = x[j]
			j--
		}
		x[j+1] = v
	}
}

// tridiagonalize reduces the symmetric matrix g (destroyed) to tridiagonal
// form by Householder reflections, writing the diagonal to d and the
// subdiagonal to e[1:] (e[0] = 0). This is the classic tred2 reduction with
// the eigenvector accumulation removed — the QL stage only needs values.
func tridiagonalize(g *matrix.Dense, d, e []float64) {
	n := g.Rows()
	w := g.RawData()
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		h, scale := 0.0, 0.0
		if l > 0 {
			for _, v := range w[i*n : i*n+l+1] {
				scale += math.Abs(v)
			}
			if scale == 0 {
				e[i] = w[i*n+l]
			} else {
				row := w[i*n : i*n+l+1]
				inv := 1 / scale
				for k, v := range row {
					v *= inv
					row[k] = v
					h += v * v
				}
				f := row[l]
				g := math.Sqrt(h)
				if f >= 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				row[l] = f - g
				f = 0.0
				for j := 0; j <= l; j++ {
					// Form an element of G·u in e[j] (e doubles as scratch for
					// indices below i; each slot is rewritten before the outer
					// loop reads it as a subdiagonal).
					s := 0.0
					for k := 0; k <= j; k++ {
						s += w[j*n+k] * row[k]
					}
					for k := j + 1; k <= l; k++ {
						s += w[k*n+j] * row[k]
					}
					e[j] = s / h
					f += e[j] * row[j]
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = row[j]
					s := e[j] - hh*f
					e[j] = s
					wj := w[j*n : j*n+j+1]
					for k := range wj {
						wj[k] -= f*e[k] + s*row[k]
					}
				}
			}
		} else {
			e[i] = w[i*n+l]
		}
	}
	e[0] = 0
	for i := 0; i < n; i++ {
		d[i] = w[i*n+i]
	}
}

// tqlImplicitShift finds all eigenvalues of the symmetric tridiagonal matrix
// with diagonal d and subdiagonal e[1:] by the QL algorithm with implicit
// shifts, overwriting d with the (unordered) eigenvalues. It reports false if
// any eigenvalue fails to converge within the iteration budget. e is
// destroyed.
func tqlImplicitShift(d, e []float64) bool {
	n := len(d)
	if n <= 1 {
		return true
	}
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			var m int
			for m = l; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= macheps*dd {
					break
				}
			}
			if m == l {
				break
			}
			if iter == 50 {
				return false
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := pythag(g, 1)
			g = d[m] - d[l] + e[l]/(g+signOf(r, g))
			s, c, p := 1.0, 1.0, 0.0
			underflow := false
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = pythag(f, g)
				e[i+1] = r
				if r == 0 {
					// Recover from underflow by restarting this eigenvalue.
					d[i+1] -= p
					e[m] = 0
					underflow = true
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
			}
			if underflow {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return true
}
