package linalg

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/matrix"
)

// Factors holds a singular value decomposition a = U·diag(S)·Vᵀ with the
// singular values sorted descending. For an m×n input with k = min(m, n),
// U is m×k, S has length k and V is n×k.
type Factors struct {
	U *matrix.Dense
	S []float64
	V *matrix.Dense
}

// Reconstruct returns U·diag(S)·Vᵀ, primarily for tests.
func (f *Factors) Reconstruct() *matrix.Dense {
	us := f.U.Clone().ScaleCols(f.S)
	return matrix.Mul(us, f.V.T())
}

// SVDJacobi computes the singular value decomposition of a using one-sided
// (Hestenes) Jacobi rotations. It is slower than Golub–Reinsch but extremely
// robust and accurate for the small/medium dense matrices this repository
// manipulates; the two algorithms cross-check each other in tests.
func SVDJacobi(a *matrix.Dense) *Factors {
	m, n := a.Dims()
	if m < n {
		// One-sided Jacobi wants tall matrices; transpose and swap U/V.
		f := SVDJacobi(a.T())
		return &Factors{U: f.V, S: f.S, V: f.U}
	}
	w := a.Clone()
	v := matrix.Identity(n)
	const (
		tol       = 1e-14
		maxSweeps = 60
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Gram entries of the column pair (p, q).
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					x, y := w.At(i, p), w.At(i, q)
					app += x * x
					aqq += y * y
					apq += x * y
				}
				if math.Abs(apq) <= tol*math.Sqrt(app*aqq) || apq == 0 {
					continue
				}
				off++
				// Jacobi rotation that annihilates the (p,q) Gram entry.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				rotateCols(w, p, q, c, s)
				rotateCols(v, p, q, c, s)
			}
		}
		if off == 0 {
			break
		}
	}
	// Singular values are the column norms of the rotated matrix; U's columns
	// are the normalized columns (zero columns get an arbitrary completion of
	// zeros, which is fine for value-only consumers and for reconstruction).
	sv := make([]float64, n)
	u := matrix.New(m, n)
	for j := 0; j < n; j++ {
		col := w.Col(j)
		norm := matrix.Nrm2(col)
		sv[j] = norm
		if norm > 0 {
			for i := 0; i < m; i++ {
				u.Set(i, j, col[i]/norm)
			}
		}
	}
	sortFactorsDescending(u, sv, v)
	return &Factors{U: u, S: sv, V: v}
}

// rotateCols applies the plane rotation [c -s; s c] to columns p and q:
// new_p = c*p - s*q, new_q = s*p + c*q.
func rotateCols(m *matrix.Dense, p, q int, c, s float64) {
	rows := m.Rows()
	for i := 0; i < rows; i++ {
		x, y := m.At(i, p), m.At(i, q)
		m.Set(i, p, c*x-s*y)
		m.Set(i, q, s*x+c*y)
	}
}

// sortFactorsDescending reorders the columns of u and v and entries of s so
// that s is descending.
func sortFactorsDescending(u *matrix.Dense, s []float64, v *matrix.Dense) {
	idx := make([]int, len(s))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return s[idx[a]] > s[idx[b]] })
	sorted := make([]float64, len(s))
	for i, p := range idx {
		sorted[i] = s[p]
	}
	copy(s, sorted)
	reorderCols(u, idx)
	reorderCols(v, idx)
}

func reorderCols(m *matrix.Dense, idx []int) {
	if m == nil {
		return
	}
	perm := make([]int, len(idx))
	copy(perm, idx)
	tmp := m.PermuteCols(perm)
	m.CopyFrom(tmp)
}

// SymEigJacobi computes all eigenvalues and eigenvectors of a symmetric
// matrix using the cyclic Jacobi method. Eigenvalues are returned descending,
// with matching eigenvector columns.
func SymEigJacobi(a *matrix.Dense) (vals []float64, vecs *matrix.Dense) {
	n, c := a.Dims()
	if n != c {
		panic(fmt.Sprintf("linalg: SymEigJacobi requires a square matrix, got %dx%d", n, c))
	}
	w := a.Clone()
	v := matrix.Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				off += w.At(p, q) * w.At(p, q)
			}
		}
		if off <= 1e-30*(1+w.NormFro()*w.NormFro()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if apq == 0 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				cth := 1 / math.Sqrt(1+t*t)
				sth := cth * t
				// W := Jᵀ W J where J rotates the (p,q) plane.
				applySymRotation(w, p, q, cth, sth)
				rotateCols(v, p, q, cth, sth)
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	sortFactorsDescending(v, vals, nil)
	return vals, v
}

// applySymRotation performs W := Jᵀ W J for the rotation J acting on the
// (p,q) plane with cosine c and sine s, preserving symmetry.
func applySymRotation(w *matrix.Dense, p, q int, c, s float64) {
	n := w.Rows()
	for i := 0; i < n; i++ {
		if i == p || i == q {
			continue
		}
		wip, wiq := w.At(i, p), w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(p, i, w.At(i, p))
		w.Set(i, q, s*wip+c*wiq)
		w.Set(q, i, w.At(i, q))
	}
	wpp, wqq, wpq := w.At(p, p), w.At(q, q), w.At(p, q)
	w.Set(p, p, c*c*wpp-2*s*c*wpq+s*s*wqq)
	w.Set(q, q, s*s*wpp+2*s*c*wpq+c*c*wqq)
	w.Set(p, q, 0)
	w.Set(q, p, 0)
}
