package linalg

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/matrix"
)

// Factors holds a singular value decomposition a = U·diag(S)·Vᵀ with the
// singular values sorted descending. For an m×n input with k = min(m, n),
// U is m×k, S has length k and V is n×k.
type Factors struct {
	U *matrix.Dense
	S []float64
	V *matrix.Dense
}

// Reconstruct returns U·diag(S)·Vᵀ, primarily for tests.
func (f *Factors) Reconstruct() *matrix.Dense {
	us := f.U.Clone().ScaleCols(f.S)
	return matrix.Mul(us, f.V.T())
}

// SVDJacobi computes the singular value decomposition of a using one-sided
// (Hestenes) Jacobi rotations. It is slower than Golub–Reinsch but extremely
// robust and accurate for the small/medium dense matrices this repository
// manipulates; the two algorithms cross-check each other in tests.
//
// The sweep operates on a contiguous column-major working copy so that the
// hot Gram-pair accumulation and plane rotations run over contiguous slices
// (one fused pass per pair) instead of striding row-major storage through
// bounds-checked element accessors.
func SVDJacobi(a *matrix.Dense) *Factors {
	m, n := a.Dims()
	if m < n {
		// One-sided Jacobi wants tall matrices; transpose and swap U/V.
		f := SVDJacobi(a.T())
		return &Factors{U: f.V, S: f.S, V: f.U}
	}
	// Column-major working copy: column j of a lives at w[j*m : (j+1)*m].
	w := make([]float64, m*n)
	ad := a.RawData()
	for i := 0; i < m; i++ {
		row := ad[i*n : (i+1)*n]
		for j, val := range row {
			w[j*m+i] = val
		}
	}
	// Right-vector accumulator, also column-major (n×n identity).
	v := make([]float64, n*n)
	for j := 0; j < n; j++ {
		v[j*n+j] = 1
	}
	const (
		tol       = 1e-14
		maxSweeps = 60
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0
		for p := 0; p < n-1; p++ {
			wp := w[p*m : (p+1)*m]
			for q := p + 1; q < n; q++ {
				wq := w[q*m : (q+1)*m]
				// Fused Gram-pair accumulation over the two columns.
				var app, aqq, apq float64
				for i, x := range wp {
					y := wq[i]
					app += x * x
					aqq += y * y
					apq += x * y
				}
				if math.Abs(apq) <= tol*math.Sqrt(app*aqq) || apq == 0 {
					continue
				}
				off++
				// Jacobi rotation that annihilates the (p,q) Gram entry.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				rotatePair(wp, wq, c, s)
				rotatePair(v[p*n:(p+1)*n], v[q*n:(q+1)*n], c, s)
			}
		}
		if off == 0 {
			break
		}
	}
	// Singular values are the column norms of the rotated matrix; U's columns
	// are the normalized columns (zero columns get an arbitrary completion of
	// zeros, which is fine for value-only consumers and for reconstruction).
	// Sorting happens on emit: output column k is working column idx[k], so
	// no post-hoc column permutation pass is needed.
	norms := make([]float64, n)
	for j := 0; j < n; j++ {
		norms[j] = matrix.Nrm2(w[j*m : (j+1)*m])
	}
	idx := descendingPerm(norms)
	sv := make([]float64, n)
	u := matrix.New(m, n)
	ud := u.RawData()
	vout := matrix.New(n, n)
	vd := vout.RawData()
	for k, p := range idx {
		sv[k] = norms[p]
		if norm := norms[p]; norm > 0 {
			col := w[p*m : (p+1)*m]
			inv := 1 / norm
			for i, x := range col {
				ud[i*n+k] = x * inv
			}
		}
		vcol := v[p*n : (p+1)*n]
		for i, x := range vcol {
			vd[i*n+k] = x
		}
	}
	return &Factors{U: u, S: sv, V: vout}
}

// rotatePair applies the plane rotation [c -s; s c] to the contiguous column
// pair (x, y): new_x = c*x - s*y, new_y = s*x + c*y.
func rotatePair(x, y []float64, c, s float64) {
	for i, xv := range x {
		yv := y[i]
		x[i] = c*xv - s*yv
		y[i] = s*xv + c*yv
	}
}

// descendingPerm returns the stable permutation that sorts vals descending.
func descendingPerm(vals []float64) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })
	return idx
}

// sortFactorsDescending reorders the columns of u and v and entries of s so
// that s is descending.
func sortFactorsDescending(u *matrix.Dense, s []float64, v *matrix.Dense) {
	idx := descendingPerm(s)
	sorted := make([]float64, len(s))
	for i, p := range idx {
		sorted[i] = s[p]
	}
	copy(s, sorted)
	if u != nil {
		u.PermuteColsInPlace(idx)
	}
	if v != nil {
		v.PermuteColsInPlace(idx)
	}
}

// SymEigJacobi computes all eigenvalues and eigenvectors of a symmetric
// matrix using the cyclic Jacobi method. Eigenvalues are returned descending,
// with matching eigenvector columns. The rotations run over the raw backing
// slices (index arithmetic, no bounds-checked accessors).
func SymEigJacobi(a *matrix.Dense) (vals []float64, vecs *matrix.Dense) {
	n, c := a.Dims()
	if n != c {
		panic(fmt.Sprintf("linalg: SymEigJacobi requires a square matrix, got %dx%d", n, c))
	}
	w := a.Clone()
	v := matrix.Identity(n)
	wd := w.RawData()
	vd := v.RawData()
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			row := wd[p*n : (p+1)*n]
			for _, x := range row[p+1:] {
				off += x * x
			}
		}
		if off <= 1e-30*(1+w.NormFro()*w.NormFro()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := wd[p*n+q]
				if apq == 0 {
					continue
				}
				app, aqq := wd[p*n+p], wd[q*n+q]
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				cth := 1 / math.Sqrt(1+t*t)
				sth := cth * t
				// W := Jᵀ W J where J rotates the (p,q) plane.
				applySymRotation(wd, n, p, q, cth, sth)
				// Rotate eigenvector columns p and q (row-major, stride n).
				for i := 0; i < n; i++ {
					x, y := vd[i*n+p], vd[i*n+q]
					vd[i*n+p] = cth*x - sth*y
					vd[i*n+q] = sth*x + cth*y
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = wd[i*n+i]
	}
	sortFactorsDescending(v, vals, nil)
	return vals, v
}

// applySymRotation performs W := Jᵀ W J on the raw row-major slice w of an
// n×n symmetric matrix, for the rotation J acting on the (p,q) plane with
// cosine c and sine s, preserving symmetry.
func applySymRotation(w []float64, n, p, q int, c, s float64) {
	for i := 0; i < n; i++ {
		if i == p || i == q {
			continue
		}
		wip, wiq := w[i*n+p], w[i*n+q]
		nip := c*wip - s*wiq
		niq := s*wip + c*wiq
		w[i*n+p], w[p*n+i] = nip, nip
		w[i*n+q], w[q*n+i] = niq, niq
	}
	wpp, wqq, wpq := w[p*n+p], w[q*n+q], w[p*n+q]
	w[p*n+p] = c*c*wpp - 2*s*c*wpq + s*s*wqq
	w[q*n+q] = s*s*wpp + 2*s*c*wpq + c*c*wqq
	w[p*n+q] = 0
	w[q*n+p] = 0
}
