package etcmat

import (
	"math"
	"sync"
	"testing"

	"repro/internal/matrix"
)

func memoTestEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewFromECS(matrix.FromRows([][]float64{
		{4, 1, 1},
		{1, 4, 1},
		{1, 1, 4},
		{2, 3, 5},
	}))
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// TestMemoizedSumsMatchMatrix checks the memoized weighted sums against the
// sums computed directly from the weighted matrix.
func TestMemoizedSumsMatchMatrix(t *testing.T) {
	env := memoTestEnv(t)
	w := env.WeightedECS()
	wantRows, wantCols := w.RowSums(), w.ColSums()
	gotRows, gotCols := env.WeightedRowSums(), env.WeightedColSums()
	for i := range wantRows {
		if gotRows[i] != wantRows[i] {
			t.Errorf("row sum %d: memo %v, matrix %v", i, gotRows[i], wantRows[i])
		}
	}
	for j := range wantCols {
		if gotCols[j] != wantCols[j] {
			t.Errorf("col sum %d: memo %v, matrix %v", j, gotCols[j], wantCols[j])
		}
	}
	// Returned slices must be private copies: scribbling on one must not leak
	// into later queries.
	gotRows[0] = -1
	if env.WeightedRowSums()[0] == -1 {
		t.Fatal("WeightedRowSums returned a live reference to the memo")
	}
}

// TestMemoInvalidatedByMutators checks that derived-state memoization cannot
// leak across the immutable-Env mutators: a derived Env must answer from its
// own matrix, not its parent's memo.
func TestMemoInvalidatedByMutators(t *testing.T) {
	env := memoTestEnv(t)
	// Populate the parent's memo first.
	_ = env.WeightedColSums()
	if _, _, err := env.StandardForm(); err != nil {
		t.Fatal(err)
	}

	weights := []float64{10, 1, 1, 1}
	reweighted, err := env.WithWeights(weights, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := reweighted.WeightedECS()
	wantCols := w.ColSums()
	gotCols := reweighted.WeightedColSums()
	for j := range wantCols {
		if gotCols[j] != wantCols[j] {
			t.Errorf("after WithWeights, col sum %d: memo %v, matrix %v", j, gotCols[j], wantCols[j])
		}
	}

	sub, err := env.Subenv([]int{0, 1, 2}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(sub.WeightedColSums()), 2; got != want {
		t.Fatalf("subenv memo answered with %d columns, want %d", got, want)
	}
}

// TestStandardFormConcurrent hammers the memo from many goroutines; run with
// -race this is the regression test for the build-once locking. All callers
// must observe the same converged standard form.
func TestStandardFormConcurrent(t *testing.T) {
	env := memoTestEnv(t)
	const goroutines = 16
	type result struct {
		sigma1 float64
		rows   []float64
		cols   []float64
	}
	results := make([]result, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Mix all memoized queries so first-call races cover every field.
			rows := env.WeightedRowSums()
			cols := env.WeightedColSums()
			_, sv, err := env.StandardForm()
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = result{sv[0], rows, cols}
		}(g)
	}
	wg.Wait()
	for g, r := range results {
		if math.Abs(r.sigma1-1) > 1e-6 {
			t.Errorf("goroutine %d: sigma1 = %v, want 1", g, r.sigma1)
		}
		for i := range r.rows {
			if r.rows[i] != results[0].rows[i] {
				t.Errorf("goroutine %d: row sums diverge at %d", g, i)
			}
		}
		for j := range r.cols {
			if r.cols[j] != results[0].cols[j] {
				t.Errorf("goroutine %d: col sums diverge at %d", g, j)
			}
		}
	}
}
