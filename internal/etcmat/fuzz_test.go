package etcmat

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/matrix"
)

// FuzzReadETCCSV asserts the CSV parser never panics and that anything it
// accepts round-trips losslessly through WriteETCCSV.
func FuzzReadETCCSV(f *testing.F) {
	f.Add("task,m1,m2\ngcc,10,20\nmcf,30,15\n")
	f.Add("task,m1\nonly,inf\n")
	f.Add("task,m1,m2\na,1,inf\nb,inf,2\n")
	f.Add("task,m1\n\n")
	f.Add("task;m1\na;1\n")
	f.Add("task,m1\na,-5\n")
	f.Add("task,m1\na,1e309\n")
	f.Add("\"task\",\"m,1\"\n\"a b\",3\n")
	f.Fuzz(func(t *testing.T, in string) {
		env, err := ReadETCCSV(strings.NewReader(in))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := env.WriteETCCSV(&buf); err != nil {
			t.Fatalf("accepted input failed to serialize: %v", err)
		}
		back, err := ReadETCCSV(&buf)
		if err != nil {
			t.Fatalf("serialized form rejected: %v\ninput: %q\nserialized: %q", err, in, buf.String())
		}
		if !matrix.EqualTol(back.ECS(), env.ECS(), 1e-12) {
			t.Fatalf("round trip changed values for input %q", in)
		}
	})
}

// FuzzUnmarshalJSON asserts the JSON decoder never panics and that accepted
// environments satisfy the ECS invariants.
func FuzzUnmarshalJSON(f *testing.F) {
	valid, _ := json.Marshal(MustFromECS([][]float64{{1, 2}, {3, 0}}))
	f.Add(string(valid))
	f.Add(`{"ecs":[[1]]}`)
	f.Add(`{"ecs":[[0,0]]}`)
	f.Add(`{"ecs":[[1,2]],"taskWeights":[0]}`)
	f.Add(`{"ecs":[]}`)
	f.Add(`{`)
	f.Add(`null`)
	f.Fuzz(func(t *testing.T, in string) {
		var env Env
		if err := json.Unmarshal([]byte(in), &env); err != nil {
			return
		}
		if env.Tasks() == 0 || env.Machines() == 0 {
			t.Fatalf("accepted environment with empty dimensions from %q", in)
		}
		ecs := env.ECS()
		if !ecs.NonNegative() {
			t.Fatalf("accepted negative ECS from %q", in)
		}
		for i := 0; i < env.Tasks(); i++ {
			if ecs.RowSum(i) == 0 {
				t.Fatalf("accepted all-zero row from %q", in)
			}
		}
	})
}
