package etcmat

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"
)

// ContentKey is the canonical content address of an environment: a SHA-256
// over everything a measure profile depends on — the ECS entries, both weight
// vectors and the dimensions. Task and machine names are excluded (no measure
// reads them), so two environments that differ only in labeling share a key,
// and any numeric difference separates them.
//
// The canonical byte stream is, in order, all little-endian uint64s:
//
//	ECS entries row-major (float64 bits, -0 canonicalized to +0),
//	task weights, machine weights (float64 bits),
//	tasks, machines.
//
// The dimensions come LAST so a streaming decoder can feed cells into a
// ContentHasher as it tokenizes them, before it knows how many rows the body
// holds; the trailing dims and weight vectors make the stream unambiguous for
// every valid environment (a T×M environment always contributes exactly
// T·M + T + M + 2 words).
type ContentKey [sha256.Size]byte

// ContentKey computes the canonical content address of the environment. The
// serving tier's result cache is keyed by it; streaming request decoders
// reproduce it incrementally with a ContentHasher instead of calling this.
func (e *Env) ContentKey() ContentKey {
	h := NewContentHasher()
	t, m := e.Tasks(), e.Machines()
	for i := 0; i < t; i++ {
		for j := 0; j < m; j++ {
			h.WriteValue(e.ecs.At(i, j))
		}
	}
	h.WriteValues(e.taskWeights)
	h.WriteValues(e.machineWeights)
	return h.Sum(t, m)
}

// ContentHasher accumulates the canonical byte stream of an environment
// incrementally, so a request decoder can hash ECS cells while it parses
// them and never rescans (or re-materializes) the matrix to key the cache.
// Values are block-buffered before reaching SHA-256: one Write per cell
// would dominate the hash cost at fleet shapes.
//
// Usage: WriteValue/WriteValues for every ECS cell in row-major order, then
// the weight vectors (WriteValues, or WriteOnes for defaulted weights), then
// Sum with the dimensions. Reset recycles the hasher.
type ContentHasher struct {
	h   hash.Hash
	buf [64 * 8]byte
	n   int
	// sum is the retained digest output buffer. Passing a local array through
	// the hash.Hash interface forces it to escape — one heap allocation per
	// Sum, which is one per request on the pooled decode path; appending into
	// a field the hasher owns keeps the warm path allocation-free.
	sum []byte
}

// NewContentHasher returns an empty hasher.
func NewContentHasher() *ContentHasher {
	return &ContentHasher{h: sha256.New()}
}

// Reset returns the hasher to its initial state for reuse.
func (c *ContentHasher) Reset() {
	c.h.Reset()
	c.n = 0
}

func (c *ContentHasher) writeU64(v uint64) {
	if c.n == len(c.buf) {
		c.h.Write(c.buf[:])
		c.n = 0
	}
	binary.LittleEndian.PutUint64(c.buf[c.n:], v)
	c.n += 8
}

// WriteValue appends one float64 to the canonical stream, canonicalizing -0
// to +0 so numerically equal matrices share keys.
func (c *ContentHasher) WriteValue(v float64) {
	if v == 0 {
		v = 0
	}
	c.writeU64(math.Float64bits(v))
}

// WriteValues appends a float64 slice to the canonical stream.
func (c *ContentHasher) WriteValues(vs []float64) {
	for _, v := range vs {
		c.WriteValue(v)
	}
}

// WriteOnes appends n unit weights — the canonical form of an absent weight
// vector.
func (c *ContentHasher) WriteOnes(n int) {
	for i := 0; i < n; i++ {
		c.writeU64(math.Float64bits(1))
	}
}

// Sum appends the trailing dimensions and returns the finished key. The
// hasher must be Reset before reuse.
func (c *ContentHasher) Sum(tasks, machines int) ContentKey {
	c.writeU64(uint64(tasks))
	c.writeU64(uint64(machines))
	c.h.Write(c.buf[:c.n])
	c.n = 0
	c.sum = c.h.Sum(c.sum[:0])
	var k ContentKey
	copy(k[:], c.sum)
	return k
}
