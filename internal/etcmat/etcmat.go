// Package etcmat models heterogeneous computing (HC) environments the way
// the reproduced paper does: as an ETC (estimated time to compute) matrix
// whose entry (i, j) is the time task type i takes on machine j when run
// alone, or equivalently as its entrywise reciprocal, the ECS (estimated
// computation speed) matrix (paper Eq. 1).
//
// An environment carries task-type and machine names, and the optional
// weighting factors w_t(i) and w_m(j) that the paper folds into every
// measure (Eqs. 4 and 6). A task type that cannot run on a machine has
// ETC = +Inf and ECS = 0. Environments with a task type that runs nowhere,
// or a machine that runs nothing, are invalid (all-zero ECS row/column,
// paper Sec. II-B).
package etcmat

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"

	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/sinkhorn"
)

// Env is an immutable-by-convention heterogeneous computing environment.
// Mutating methods return a new Env.
type Env struct {
	ecs            *matrix.Dense // canonical storage: speeds, zeros allowed
	taskNames      []string
	machineNames   []string
	taskWeights    []float64 // w_t, all positive
	machineWeights []float64 // w_m, all positive

	// memo caches quantities derived from the weighted ECS matrix. Because
	// every mutating method returns a new Env (with a fresh memo), cached
	// values can never go stale — invalidation is structural. The memo is
	// safe for concurrent use, so measure queries may run from many
	// goroutines against a shared Env.
	memo *envMemo

	// stdSeed optionally warm-starts the standard-form computation with the
	// scaling vectors of a nearby environment (see WithStandardFormSeed). It
	// is a hint, not derived state: it never goes stale in the correctness
	// sense (a Sinkhorn run converges to the same unique standard form from
	// any positive seed), so clone keeps it across name/weight edits.
	stdSeed *sinkhorn.WarmStart

	// stdTol optionally overrides the standard-form convergence tolerance
	// (see SetStandardFormTol); zero selects sinkhorn.DefaultTol. Like
	// stdSeed it only changes where the iteration stops, never what it
	// converges to, so clone carries it across edits.
	stdTol float64
}

// envMemo holds the lazily computed derived state of an Env: the weighted
// ECS matrix with its row/column sums, and the standard form (Sinkhorn
// balance + singular values) that TMA-style measures repeatedly need. All
// fields are built at most once under mu and are read-only afterwards.
type envMemo struct {
	mu sync.Mutex

	weighted        *matrix.Dense // w_t(i)·w_m(j)·ECS(i,j); treat as read-only
	weightedRowSums []float64
	weightedColSums []float64

	stdDone bool
	std     *sinkhorn.Result // shared; treat as read-only
	stdSV   []float64        // singular values of std.Scaled, descending
	stdErr  error
}

// ErrInvalid wraps all environment validation failures.
var ErrInvalid = errors.New("etcmat: invalid environment")

// NewFromECS builds an environment from an ECS (speed) matrix. Entries must
// be nonnegative and finite; every row and every column must contain at
// least one positive entry. The matrix is cloned.
func NewFromECS(ecs *matrix.Dense) (*Env, error) {
	if err := validateECS(ecs); err != nil {
		return nil, err
	}
	return adoptECS(matrix.ClonePooled(ecs)), nil
}

// NewFromECSOwned is NewFromECS taking ownership of ecs instead of cloning
// it: the environment uses the matrix directly and ReleaseBuffers recycles
// it. The caller must not touch ecs afterwards. This is the ingestion fast
// path — a decoder that already materialized a pooled matrix (see
// matrix.FromDataPooled) hands it over without a second copy.
func NewFromECSOwned(ecs *matrix.Dense) (*Env, error) {
	if err := validateECS(ecs); err != nil {
		return nil, err
	}
	return adoptECS(ecs), nil
}

func validateECS(ecs *matrix.Dense) error {
	t, m := ecs.Dims()
	if t == 0 || m == 0 {
		return fmt.Errorf("%w: empty matrix", ErrInvalid)
	}
	for i := 0; i < t; i++ {
		for j := 0; j < m; j++ {
			v := ecs.At(i, j)
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("%w: ECS(%d,%d) = %g must be finite and nonnegative", ErrInvalid, i, j, v)
			}
		}
	}
	for i := 0; i < t; i++ {
		if ecs.RowSum(i) == 0 {
			return fmt.Errorf("%w: task type %d cannot run on any machine (all-zero ECS row)", ErrInvalid, i)
		}
	}
	for j := 0; j < m; j++ {
		if ecs.ColSum(j) == 0 {
			return fmt.Errorf("%w: machine %d cannot run any task type (all-zero ECS column)", ErrInvalid, j)
		}
	}
	return nil
}

func adoptECS(ecs *matrix.Dense) *Env {
	t, m := ecs.Dims()
	return &Env{
		ecs:            ecs,
		taskNames:      defaultNames("t", t),
		machineNames:   defaultNames("m", m),
		taskWeights:    onesVec(t),
		machineWeights: onesVec(m),
		memo:           &envMemo{},
	}
}

// NewFromETC builds an environment from an ETC (time) matrix. Entries must be
// strictly positive or +Inf (cannot run). The ECS form is stored internally
// (Eq. 1: ECS = 1/ETC, with 1/Inf = 0).
func NewFromETC(etc *matrix.Dense) (*Env, error) {
	t, m := etc.Dims()
	if t == 0 || m == 0 {
		return nil, fmt.Errorf("%w: empty matrix", ErrInvalid)
	}
	ecs := matrix.New(t, m)
	for i := 0; i < t; i++ {
		for j := 0; j < m; j++ {
			v := etc.At(i, j)
			switch {
			case math.IsInf(v, 1):
				ecs.Set(i, j, 0)
			case math.IsNaN(v) || v <= 0:
				return nil, fmt.Errorf("%w: ETC(%d,%d) = %g must be positive or +Inf", ErrInvalid, i, j, v)
			default:
				ecs.Set(i, j, 1/v)
			}
		}
	}
	return NewFromECS(ecs)
}

// MustFromECS is NewFromECS that panics on error; for literals in tests and
// examples.
func MustFromECS(rows [][]float64) *Env {
	e, err := NewFromECS(matrix.FromRows(rows))
	if err != nil {
		panic(err)
	}
	return e
}

// MustFromETC is NewFromETC that panics on error.
func MustFromETC(rows [][]float64) *Env {
	e, err := NewFromETC(matrix.FromRows(rows))
	if err != nil {
		panic(err)
	}
	return e
}

// Tasks returns the number of task types T.
func (e *Env) Tasks() int { return e.ecs.Rows() }

// Machines returns the number of machines M.
func (e *Env) Machines() int { return e.ecs.Cols() }

// ECS returns a copy of the ECS (speed) matrix.
func (e *Env) ECS() *matrix.Dense { return e.ecs.Clone() }

// ETC returns the ETC (time) matrix; zero speeds map to +Inf.
func (e *Env) ETC() *matrix.Dense {
	out := e.ecs.Clone()
	out.Apply(func(i, j int, v float64) float64 {
		if v == 0 {
			return math.Inf(1)
		}
		return 1 / v
	})
	return out
}

// WeightedECS returns the ECS matrix with entry (i, j) multiplied by
// w_t(i)·w_m(j) — the matrix every weighted measure is computed from. The
// result is a fresh copy the caller may mutate; the underlying weighted
// matrix is computed once per Env and memoized.
func (e *Env) WeightedECS() *matrix.Dense {
	return e.weightedECS().Clone()
}

// weightedECS returns the memoized weighted ECS matrix. Callers must not
// mutate it.
func (e *Env) weightedECS() *matrix.Dense {
	mm := e.memo
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if mm.weighted == nil {
		w := matrix.ClonePooled(e.ecs)
		w.ScaleRows(e.taskWeights)
		w.ScaleCols(e.machineWeights)
		mm.weighted = w
		mm.weightedRowSums = w.RowSums()
		mm.weightedColSums = w.ColSums()
	}
	return mm.weighted
}

// WeightedRowSums returns a copy of the weighted ECS row sums — the task
// difficulties TD_i of paper Eq. 6 — from the memo.
func (e *Env) WeightedRowSums() []float64 {
	e.weightedECS()
	return matrix.VecClone(e.memo.weightedRowSums)
}

// WeightedColSums returns a copy of the weighted ECS column sums — the
// machine performances MP_j of paper Eq. 4 — from the memo.
func (e *Env) WeightedColSums() []float64 {
	e.weightedECS()
	return matrix.VecClone(e.memo.weightedColSums)
}

// StandardForm standardizes the weighted ECS matrix (paper Theorem 1 with
// k = 1/√(TM)) and computes the singular values of the standard-form matrix,
// memoizing the result: the MPH→TDH→TMA query pattern on one Env pays for
// the Sinkhorn iteration and the SVD exactly once. The returned Result,
// slice and error are shared across callers and must be treated as
// read-only; clone before mutating. On a standardization failure (paper
// Sec. VI) the error and the last iterate are memoized and returned alike.
func (e *Env) StandardForm() (*sinkhorn.Result, []float64, error) {
	return e.StandardFormCtx(context.Background())
}

// StandardFormCtx is StandardForm with stage tracing: when ctx carries an
// obs.Trace and the standard form is not yet memoized, the balancing run and
// the spectral pipeline emit "standardize", "gram" and "eigensolve" spans.
// A memoized hit emits no spans — no work happened.
func (e *Env) StandardFormCtx(ctx context.Context) (*sinkhorn.Result, []float64, error) {
	w := e.weightedECS()
	mm := e.memo
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if !mm.stdDone {
		seed := e.stdSeed
		if !seed.Matches(e.Tasks(), e.Machines()) {
			seed = nil // shape hints that no longer apply are dropped, not errors
		}
		mm.std, mm.stdErr = sinkhorn.StandardizeWarmTolCtx(ctx, w, seed, nil, e.stdTol)
		if mm.stdErr == nil {
			mm.stdSV = linalg.SingularValuesCtx(ctx, mm.std.Scaled, nil)
		}
		mm.stdDone = true
	}
	return mm.std, mm.stdSV, mm.stdErr
}

// StandardFormSeed extracts a warm-start seed from the memoized standard
// form: the converged scaling diagonals of the weighted ECS matrix plus the
// subdominant singular value σ₂ that selects the over-relaxation factor for
// the seeded run. It returns nil — and does no work — unless StandardForm
// has already run to convergence on this Env, so it is free to call
// speculatively. Seed a derived environment with WithStandardFormSeed; for
// leave-one-out edits drop the removed index first (WarmStart.DropRow /
// DropCol).
func (e *Env) StandardFormSeed() *sinkhorn.WarmStart {
	mm := e.memo
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if !mm.stdDone || mm.stdErr != nil || mm.std == nil || !mm.std.Converged {
		return nil
	}
	seed := &sinkhorn.WarmStart{
		D1: matrix.VecClone(mm.std.D1),
		D2: matrix.VecClone(mm.std.D2),
	}
	if len(mm.stdSV) > 1 {
		seed.Sigma2 = mm.stdSV[1]
	}
	return seed
}

// WithStandardFormSeed returns a copy of e whose standard-form computation
// starts from the given scaling vectors instead of the raw weighted matrix
// (see sinkhorn.WarmStart). The seed is a best-effort hint: a nil or
// shape-mismatched seed is ignored rather than rejected, and the standard
// form reached is identical to the unseeded one (Theorem 1 uniqueness) — only
// the iteration count changes. The what-if and sweep hot paths use this to
// seed each edited environment from its baseline's StandardFormSeed.
func (e *Env) WithStandardFormSeed(seed *sinkhorn.WarmStart) *Env {
	out := e.clone()
	out.SetStandardFormSeed(seed)
	return out
}

// SetStandardFormSeed installs (or, with nil, clears) the warm-start hint in
// place, skipping WithStandardFormSeed's defensive clone. It is for exclusive
// owners — the streaming session's incremental characterizer derives a fresh
// Env per mutation and seeds it before anything is computed or shared; every
// other caller should use WithStandardFormSeed. Like there, a
// shape-mismatched seed clears the hint rather than erroring, and the
// computed standard form is independent of the seed (Theorem 1 uniqueness).
func (e *Env) SetStandardFormSeed(seed *sinkhorn.WarmStart) {
	if seed.Matches(e.Tasks(), e.Machines()) {
		e.stdSeed = seed
	} else {
		e.stdSeed = nil
	}
}

// SetStandardFormTol overrides the convergence tolerance of the standard-form
// Sinkhorn solve in place (non-positive restores sinkhorn.DefaultTol). Like
// SetStandardFormSeed it is for exclusive owners, before anything is computed
// or shared. Tightening the tolerance does not change what the iteration
// converges to (Theorem 1 uniqueness), only how close it stops to the unique
// standard form: the streaming incremental characterizer solves at 1e-10 so
// that chained warm-started profiles and cold re-anchors of the same
// environment agree to well below the paper's measure precision.
func (e *Env) SetStandardFormTol(tol float64) {
	if tol <= 0 {
		tol = 0
	}
	e.stdTol = tol
}

// ReleaseBuffers hands the environment's matrix storage — the ECS clone and
// the memoized weighted and standard-form matrices — back to the shared
// size-classed pool (matrix.Recycle). At fleet scale these are tens to
// hundreds of megabytes per request, so the serving tier recycles them once a
// request's profile has been computed instead of leaving each to the GC.
//
// The caller must be the Env's sole owner and must not use it afterwards:
// every Env deep-clones its matrix state (see clone), so ownership is
// structural, and the recycled matrices are emptied to 0×0 so accidental
// reuse fails loudly. Profiles and DTOs never alias Env storage — everything
// handed out is cloned — which is what makes the release point safe.
func (e *Env) ReleaseBuffers() {
	mm := e.memo
	mm.mu.Lock()
	defer mm.mu.Unlock()
	matrix.Recycle(e.ecs)
	e.ecs = nil
	matrix.Recycle(mm.weighted)
	mm.weighted = nil
	if mm.std != nil {
		matrix.Recycle(mm.std.Scaled)
		mm.std = nil
	}
}

// ECSAt returns ECS(i, j) without copying the matrix.
func (e *Env) ECSAt(i, j int) float64 { return e.ecs.At(i, j) }

// TaskNames returns a copy of the task type names.
func (e *Env) TaskNames() []string { return append([]string(nil), e.taskNames...) }

// MachineNames returns a copy of the machine names.
func (e *Env) MachineNames() []string { return append([]string(nil), e.machineNames...) }

// TaskWeights returns a copy of w_t.
func (e *Env) TaskWeights() []float64 { return matrix.VecClone(e.taskWeights) }

// MachineWeights returns a copy of w_m.
func (e *Env) MachineWeights() []float64 { return matrix.VecClone(e.machineWeights) }

// WithTaskNames returns a copy of e with the given task names.
func (e *Env) WithTaskNames(names []string) (*Env, error) {
	if len(names) != e.Tasks() {
		return nil, fmt.Errorf("%w: %d task names for %d task types", ErrInvalid, len(names), e.Tasks())
	}
	out := e.clone()
	copy(out.taskNames, names)
	return out, nil
}

// WithMachineNames returns a copy of e with the given machine names.
func (e *Env) WithMachineNames(names []string) (*Env, error) {
	if len(names) != e.Machines() {
		return nil, fmt.Errorf("%w: %d machine names for %d machines", ErrInvalid, len(names), e.Machines())
	}
	out := e.clone()
	copy(out.machineNames, names)
	return out, nil
}

// WithWeights returns a copy of e with the given task and machine weighting
// factors (paper Eqs. 4 and 6). Nil keeps the existing weights. All weights
// must be strictly positive.
func (e *Env) WithWeights(taskW, machineW []float64) (*Env, error) {
	out := e.clone()
	if taskW != nil {
		if len(taskW) != e.Tasks() {
			return nil, fmt.Errorf("%w: %d task weights for %d task types", ErrInvalid, len(taskW), e.Tasks())
		}
		if err := checkPositive(taskW, "task weight"); err != nil {
			return nil, err
		}
		copy(out.taskWeights, taskW)
	}
	if machineW != nil {
		if len(machineW) != e.Machines() {
			return nil, fmt.Errorf("%w: %d machine weights for %d machines", ErrInvalid, len(machineW), e.Machines())
		}
		if err := checkPositive(machineW, "machine weight"); err != nil {
			return nil, err
		}
		copy(out.machineWeights, machineW)
	}
	return out, nil
}

func checkPositive(w []float64, what string) error {
	for i, v := range w {
		if !(v > 0) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: %s %d = %g must be positive and finite", ErrInvalid, what, i, v)
		}
	}
	return nil
}

// TaskIndex returns the index of the named task type, or -1.
func (e *Env) TaskIndex(name string) int { return indexOf(e.taskNames, name) }

// MachineIndex returns the index of the named machine, or -1.
func (e *Env) MachineIndex(name string) int { return indexOf(e.machineNames, name) }

func indexOf(names []string, name string) int {
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return -1
}

// Subenv extracts the environment restricted to the given task and machine
// indices (the paper's Fig. 8 extractions). Validation reapplies: a
// restriction may strand a task type or machine.
func (e *Env) Subenv(taskIdx, machineIdx []int) (*Env, error) {
	sub := e.ecs.Submatrix(taskIdx, machineIdx)
	out, err := NewFromECS(sub)
	if err != nil {
		return nil, err
	}
	for i, ti := range taskIdx {
		out.taskNames[i] = e.taskNames[ti]
		out.taskWeights[i] = e.taskWeights[ti]
	}
	for j, mj := range machineIdx {
		out.machineNames[j] = e.machineNames[mj]
		out.machineWeights[j] = e.machineWeights[mj]
	}
	return out, nil
}

// RemoveTask returns e without task type i (a what-if edit).
func (e *Env) RemoveTask(i int) (*Env, error) {
	if e.Tasks() == 1 {
		return nil, fmt.Errorf("%w: cannot remove the last task type", ErrInvalid)
	}
	keep := make([]int, 0, e.Tasks()-1)
	for k := 0; k < e.Tasks(); k++ {
		if k != i {
			keep = append(keep, k)
		}
	}
	return e.Subenv(keep, allIndices(e.Machines()))
}

// RemoveMachine returns e without machine j (a what-if edit).
func (e *Env) RemoveMachine(j int) (*Env, error) {
	if e.Machines() == 1 {
		return nil, fmt.Errorf("%w: cannot remove the last machine", ErrInvalid)
	}
	keep := make([]int, 0, e.Machines()-1)
	for k := 0; k < e.Machines(); k++ {
		if k != j {
			keep = append(keep, k)
		}
	}
	return e.Subenv(allIndices(e.Tasks()), keep)
}

// AddTask returns e extended with a new task type whose ECS row is speeds.
func (e *Env) AddTask(name string, speeds []float64) (*Env, error) {
	if len(speeds) != e.Machines() {
		return nil, fmt.Errorf("%w: AddTask needs %d speeds, got %d", ErrInvalid, e.Machines(), len(speeds))
	}
	t, m := e.Tasks(), e.Machines()
	ecs := matrix.New(t+1, m)
	for i := 0; i < t; i++ {
		for j := 0; j < m; j++ {
			ecs.Set(i, j, e.ecs.At(i, j))
		}
	}
	for j, v := range speeds {
		ecs.Set(t, j, v)
	}
	out, err := NewFromECS(ecs)
	if err != nil {
		return nil, err
	}
	copy(out.taskNames, e.taskNames)
	out.taskNames[t] = name
	copy(out.taskWeights, e.taskWeights)
	copy(out.machineNames, e.machineNames)
	copy(out.machineWeights, e.machineWeights)
	return out, nil
}

// AddMachine returns e extended with a new machine whose ECS column is
// speeds.
func (e *Env) AddMachine(name string, speeds []float64) (*Env, error) {
	if len(speeds) != e.Tasks() {
		return nil, fmt.Errorf("%w: AddMachine needs %d speeds, got %d", ErrInvalid, e.Tasks(), len(speeds))
	}
	t, m := e.Tasks(), e.Machines()
	ecs := matrix.New(t, m+1)
	for i := 0; i < t; i++ {
		for j := 0; j < m; j++ {
			ecs.Set(i, j, e.ecs.At(i, j))
		}
		ecs.Set(i, m, speeds[i])
	}
	out, err := NewFromECS(ecs)
	if err != nil {
		return nil, err
	}
	copy(out.taskNames, e.taskNames)
	copy(out.taskWeights, e.taskWeights)
	copy(out.machineNames, e.machineNames)
	out.machineNames[m] = name
	copy(out.machineWeights, e.machineWeights)
	return out, nil
}

// WithECSCell returns e with ECS cell (i, j) set to v — the streaming
// set-cell mutation. v follows the ECS convention (finite, nonnegative, 0 =
// impossible pairing); setting the last positive entry of a row or column to
// zero is rejected, since the resulting environment would be invalid. The
// standard-form seed hint survives (a single-cell edit is exactly the
// perturbation warm starts were built for).
func (e *Env) WithECSCell(i, j int, v float64) (*Env, error) {
	if i < 0 || i >= e.Tasks() {
		return nil, fmt.Errorf("%w: task index %d out of range [0,%d)", ErrInvalid, i, e.Tasks())
	}
	if j < 0 || j >= e.Machines() {
		return nil, fmt.Errorf("%w: machine index %d out of range [0,%d)", ErrInvalid, j, e.Machines())
	}
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return nil, fmt.Errorf("%w: ECS(%d,%d) = %g must be finite and nonnegative", ErrInvalid, i, j, v)
	}
	if v == 0 {
		if e.ecs.RowSum(i)-e.ecs.At(i, j) == 0 {
			return nil, fmt.Errorf("%w: zeroing ECS(%d,%d) leaves task type %d unable to run anywhere", ErrInvalid, i, j, i)
		}
		if e.ecs.ColSum(j)-e.ecs.At(i, j) == 0 {
			return nil, fmt.Errorf("%w: zeroing ECS(%d,%d) leaves machine %d unable to run anything", ErrInvalid, i, j, j)
		}
	}
	out := e.clone()
	out.ecs.Set(i, j, v)
	return out, nil
}

func (e *Env) clone() *Env {
	return &Env{
		ecs:            matrix.ClonePooled(e.ecs),
		taskNames:      append([]string(nil), e.taskNames...),
		machineNames:   append([]string(nil), e.machineNames...),
		taskWeights:    matrix.VecClone(e.taskWeights),
		machineWeights: matrix.VecClone(e.machineWeights),
		memo:           &envMemo{}, // derived state is never shared across Envs
		stdSeed:        e.stdSeed,  // a hint, not derived state: safe to share
		stdTol:         e.stdTol,
	}
}

func defaultNames(prefix string, n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("%s%d", prefix, i+1)
	}
	return names
}

func allIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func onesVec(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// ---- I/O ----

// WriteETCCSV writes the environment as a CSV with a header row of machine
// names and a leading task-name column. Infinite ETC entries are written as
// "inf".
func (e *Env) WriteETCCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"task"}, e.machineNames...)
	if err := cw.Write(header); err != nil {
		return err
	}
	etc := e.ETC()
	for i := 0; i < e.Tasks(); i++ {
		rec := make([]string, e.Machines()+1)
		rec[0] = e.taskNames[i]
		for j := 0; j < e.Machines(); j++ {
			v := etc.At(i, j)
			if math.IsInf(v, 1) {
				rec[j+1] = "inf"
			} else {
				rec[j+1] = strconv.FormatFloat(v, 'g', -1, 64)
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadETCCSV parses the format written by WriteETCCSV.
func ReadETCCSV(r io.Reader) (*Env, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("etcmat: reading CSV: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("%w: CSV needs a header and at least one task row", ErrInvalid)
	}
	header := records[0]
	if len(header) < 2 {
		return nil, fmt.Errorf("%w: CSV needs at least one machine column", ErrInvalid)
	}
	machineNames := header[1:]
	taskNames := make([]string, 0, len(records)-1)
	etc := matrix.New(len(records)-1, len(machineNames))
	for i, rec := range records[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("%w: row %d has %d fields, want %d", ErrInvalid, i+2, len(rec), len(header))
		}
		taskNames = append(taskNames, rec[0])
		for j, field := range rec[1:] {
			field = strings.TrimSpace(field)
			var v float64
			if strings.EqualFold(field, "inf") {
				v = math.Inf(1)
			} else {
				v, err = strconv.ParseFloat(field, 64)
				if err != nil {
					return nil, fmt.Errorf("%w: row %d col %d: %v", ErrInvalid, i+2, j+2, err)
				}
			}
			etc.Set(i, j, v)
		}
	}
	env, err := NewFromETC(etc)
	if err != nil {
		return nil, err
	}
	copy(env.taskNames, taskNames)
	copy(env.machineNames, machineNames)
	return env, nil
}

// envJSON is the stable JSON representation of an environment.
type envJSON struct {
	TaskNames      []string    `json:"taskNames"`
	MachineNames   []string    `json:"machineNames"`
	TaskWeights    []float64   `json:"taskWeights,omitempty"`
	MachineWeights []float64   `json:"machineWeights,omitempty"`
	ECS            [][]float64 `json:"ecs"`
}

// MarshalJSON encodes the environment, storing the ECS form (always finite).
func (e *Env) MarshalJSON() ([]byte, error) {
	rows := make([][]float64, e.Tasks())
	for i := range rows {
		rows[i] = e.ecs.Row(i)
	}
	return json.Marshal(envJSON{
		TaskNames:      e.taskNames,
		MachineNames:   e.machineNames,
		TaskWeights:    e.taskWeights,
		MachineWeights: e.machineWeights,
		ECS:            rows,
	})
}

// UnmarshalJSON decodes an environment encoded by MarshalJSON.
func (e *Env) UnmarshalJSON(data []byte) error {
	var ej envJSON
	if err := json.Unmarshal(data, &ej); err != nil {
		return err
	}
	if len(ej.ECS) == 0 {
		return fmt.Errorf("%w: missing or empty ecs matrix", ErrInvalid)
	}
	for i, row := range ej.ECS {
		if len(row) != len(ej.ECS[0]) {
			return fmt.Errorf("%w: ragged ecs matrix (row 0 has %d entries, row %d has %d)",
				ErrInvalid, len(ej.ECS[0]), i, len(row))
		}
	}
	env, err := NewFromECS(matrix.FromRows(ej.ECS))
	if err != nil {
		return err
	}
	if len(ej.TaskNames) == env.Tasks() {
		copy(env.taskNames, ej.TaskNames)
	}
	if len(ej.MachineNames) == env.Machines() {
		copy(env.machineNames, ej.MachineNames)
	}
	if ej.TaskWeights != nil {
		if env, err = env.WithWeights(ej.TaskWeights, nil); err != nil {
			return err
		}
	}
	if ej.MachineWeights != nil {
		if env, err = env.WithWeights(nil, ej.MachineWeights); err != nil {
			return err
		}
	}
	*e = *env
	return nil
}

// String summarizes the environment.
func (e *Env) String() string {
	return fmt.Sprintf("Env{%d task types x %d machines}", e.Tasks(), e.Machines())
}
