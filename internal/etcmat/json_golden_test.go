package etcmat

import (
	"encoding/json"
	"math"
	"testing"
)

// These golden tests pin the Env JSON wire form the serving tier depends
// on. The encoder stores the ECS (speed) matrix precisely because it is
// always finite: an impossible pairing (ETC = +Inf) is ECS = 0, so it
// survives encoding/json — which rejects infinities outright — without any
// string escape hatch. If the representation ever drifts, cached payloads
// and API clients break together; change the golden string deliberately.

func TestEnvJSONGolden(t *testing.T) {
	env := MustFromETC([][]float64{
		{10, math.Inf(1)},
		{4, 2},
	})
	env, err := env.WithWeights([]float64{2, 1}, []float64{1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	env, err = env.WithTaskNames([]string{"gcc", "mcf"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"taskNames":["gcc","mcf"],"machineNames":["m1","m2"],` +
		`"taskWeights":[2,1],"machineWeights":[1,0.5],` +
		`"ecs":[[0.1,0],[0.25,0.5]]}`
	if string(got) != golden {
		t.Errorf("Env wire form drifted:\n got  %s\n want %s", got, golden)
	}
}

func TestEnvJSONRoundTripInfAndWeights(t *testing.T) {
	orig := MustFromETC([][]float64{
		{10, math.Inf(1), 7},
		{4, 2, math.Inf(1)},
	})
	orig, err := orig.WithWeights([]float64{2, 3}, []float64{1, 0.5, 4})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Env
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Tasks() != orig.Tasks() || back.Machines() != orig.Machines() {
		t.Fatalf("shape %dx%d, want %dx%d", back.Tasks(), back.Machines(), orig.Tasks(), orig.Machines())
	}
	for i := 0; i < orig.Tasks(); i++ {
		for j := 0; j < orig.Machines(); j++ {
			if back.ECSAt(i, j) != orig.ECSAt(i, j) {
				t.Errorf("ECS(%d,%d) = %g, want %g", i, j, back.ECSAt(i, j), orig.ECSAt(i, j))
			}
		}
	}
	// The impossible pairings specifically: they are the entries a lossy
	// representation would silently clamp.
	if !math.IsInf(back.ETC().At(0, 1), 1) || !math.IsInf(back.ETC().At(1, 2), 1) {
		t.Error("impossible pairings did not survive the round trip")
	}
	for i, w := range back.TaskWeights() {
		if w != orig.TaskWeights()[i] {
			t.Errorf("task weight %d = %g, want %g", i, w, orig.TaskWeights()[i])
		}
	}
	for j, w := range back.MachineWeights() {
		if w != orig.MachineWeights()[j] {
			t.Errorf("machine weight %d = %g, want %g", j, w, orig.MachineWeights()[j])
		}
	}
	// And the profiles must match exactly — same bytes in, same measures out.
	if a, b := orig.String(), back.String(); a != b {
		t.Errorf("String() drifted: %s vs %s", a, b)
	}
}

func TestEnvJSONUnmarshalRejectsBadPayloads(t *testing.T) {
	for name, data := range map[string]string{
		"empty ecs":     `{"ecs":[]}`,
		"missing ecs":   `{"taskNames":["a"]}`,
		"ragged ecs":    `{"ecs":[[1,2],[3]]}`,
		"negative ecs":  `{"ecs":[[1,-2],[3,4]]}`,
		"zero row":      `{"ecs":[[0,0],[1,2]]}`,
		"zero column":   `{"ecs":[[0,1],[0,2]]}`,
		"bad weight":    `{"ecs":[[1,2],[3,4]],"taskWeights":[0,1]}`,
		"weight length": `{"ecs":[[1,2],[3,4]],"machineWeights":[1]}`,
	} {
		t.Run(name, func(t *testing.T) {
			var e Env
			if err := json.Unmarshal([]byte(data), &e); err == nil {
				t.Errorf("payload %s decoded without error", data)
			}
		})
	}
}
