package etcmat

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/matrix"
)

func TestNewFromECSValid(t *testing.T) {
	e, err := NewFromECS(matrix.FromRows([][]float64{{1, 2}, {3, 0}}))
	if err != nil {
		t.Fatal(err)
	}
	if e.Tasks() != 2 || e.Machines() != 2 {
		t.Errorf("dims = %dx%d", e.Tasks(), e.Machines())
	}
	if e.ECSAt(1, 1) != 0 {
		t.Errorf("ECS(1,1) = %g, want 0", e.ECSAt(1, 1))
	}
}

func TestNewFromECSRejectsZeroRow(t *testing.T) {
	_, err := NewFromECS(matrix.FromRows([][]float64{{0, 0}, {1, 1}}))
	if !errors.Is(err, ErrInvalid) {
		t.Errorf("err = %v, want ErrInvalid", err)
	}
}

func TestNewFromECSRejectsZeroCol(t *testing.T) {
	_, err := NewFromECS(matrix.FromRows([][]float64{{0, 1}, {0, 1}}))
	if !errors.Is(err, ErrInvalid) {
		t.Errorf("err = %v, want ErrInvalid", err)
	}
}

func TestNewFromECSRejectsNegativeAndNaNAndInf(t *testing.T) {
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		_, err := NewFromECS(matrix.FromRows([][]float64{{bad, 1}, {1, 1}}))
		if !errors.Is(err, ErrInvalid) {
			t.Errorf("value %g: err = %v, want ErrInvalid", bad, err)
		}
	}
}

func TestETCECSReciprocal(t *testing.T) {
	e := MustFromETC([][]float64{{2, 4}, {5, 10}})
	ecs := e.ECS()
	if ecs.At(0, 0) != 0.5 || ecs.At(1, 1) != 0.1 {
		t.Errorf("ECS = \n%v", ecs)
	}
	etc := e.ETC()
	if etc.At(0, 1) != 4 {
		t.Errorf("ETC(0,1) = %g, want 4", etc.At(0, 1))
	}
}

func TestETCInfMapsToZeroSpeed(t *testing.T) {
	e := MustFromETC([][]float64{{2, math.Inf(1)}, {5, 10}})
	if got := e.ECSAt(0, 1); got != 0 {
		t.Errorf("ECS(0,1) = %g, want 0", got)
	}
	if got := e.ETC().At(0, 1); !math.IsInf(got, 1) {
		t.Errorf("round-trip ETC(0,1) = %g, want +Inf", got)
	}
}

func TestNewFromETCRejectsZeroAndNegative(t *testing.T) {
	for _, bad := range []float64{0, -3, math.NaN(), math.Inf(-1)} {
		_, err := NewFromETC(matrix.FromRows([][]float64{{bad, 1}, {1, 1}}))
		if !errors.Is(err, ErrInvalid) {
			t.Errorf("ETC value %g: err = %v, want ErrInvalid", bad, err)
		}
	}
}

func TestDefaultNamesAndWeights(t *testing.T) {
	e := MustFromECS([][]float64{{1, 2, 3}, {4, 5, 6}})
	if got := e.TaskNames(); got[0] != "t1" || got[1] != "t2" {
		t.Errorf("TaskNames = %v", got)
	}
	if got := e.MachineNames(); got[2] != "m3" {
		t.Errorf("MachineNames = %v", got)
	}
	for _, w := range append(e.TaskWeights(), e.MachineWeights()...) {
		if w != 1 {
			t.Errorf("default weight = %g, want 1", w)
		}
	}
}

func TestWithNamesValidatesLength(t *testing.T) {
	e := MustFromECS([][]float64{{1, 2}})
	if _, err := e.WithTaskNames([]string{"a", "b"}); err == nil {
		t.Error("wrong task-name count accepted")
	}
	if _, err := e.WithMachineNames([]string{"x"}); err == nil {
		t.Error("wrong machine-name count accepted")
	}
	e2, err := e.WithTaskNames([]string{"bzip2"})
	if err != nil {
		t.Fatal(err)
	}
	if e2.TaskNames()[0] != "bzip2" {
		t.Errorf("names not applied: %v", e2.TaskNames())
	}
	if e.TaskNames()[0] != "t1" {
		t.Error("WithTaskNames mutated the receiver")
	}
}

func TestWithWeights(t *testing.T) {
	e := MustFromECS([][]float64{{1, 2}, {3, 4}})
	e2, err := e.WithWeights([]float64{2, 3}, []float64{0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	w := e2.WeightedECS()
	// (0,0): 1 * w_t(0)=2 * w_m(0)=0.5 = 1
	if got := w.At(0, 0); got != 1 {
		t.Errorf("weighted (0,0) = %g, want 1", got)
	}
	// (1,1): 4 * 3 * 1 = 12
	if got := w.At(1, 1); got != 12 {
		t.Errorf("weighted (1,1) = %g, want 12", got)
	}
	// Receiver untouched.
	if e.TaskWeights()[0] != 1 {
		t.Error("WithWeights mutated the receiver")
	}
}

func TestWithWeightsRejectsNonPositive(t *testing.T) {
	e := MustFromECS([][]float64{{1, 2}})
	if _, err := e.WithWeights([]float64{0}, nil); err == nil {
		t.Error("zero task weight accepted")
	}
	if _, err := e.WithWeights(nil, []float64{1, -2}); err == nil {
		t.Error("negative machine weight accepted")
	}
	if _, err := e.WithWeights([]float64{1, 1}, nil); err == nil {
		t.Error("wrong-length task weights accepted")
	}
}

func TestIndexLookups(t *testing.T) {
	e := MustFromECS([][]float64{{1, 2}, {3, 4}})
	e, _ = e.WithTaskNames([]string{"gcc", "mcf"})
	e, _ = e.WithMachineNames([]string{"xeon", "sparc"})
	if got := e.TaskIndex("mcf"); got != 1 {
		t.Errorf("TaskIndex(mcf) = %d", got)
	}
	if got := e.MachineIndex("xeon"); got != 0 {
		t.Errorf("MachineIndex(xeon) = %d", got)
	}
	if got := e.TaskIndex("absent"); got != -1 {
		t.Errorf("TaskIndex(absent) = %d, want -1", got)
	}
}

func TestSubenv(t *testing.T) {
	e := MustFromECS([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	e, _ = e.WithTaskNames([]string{"a", "b", "c"})
	sub, err := e.Subenv([]int{2, 0}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Tasks() != 2 || sub.Machines() != 1 {
		t.Fatalf("sub dims = %dx%d", sub.Tasks(), sub.Machines())
	}
	if sub.ECSAt(0, 0) != 8 || sub.ECSAt(1, 0) != 2 {
		t.Errorf("sub values wrong: %v", sub.ECS())
	}
	if names := sub.TaskNames(); names[0] != "c" || names[1] != "a" {
		t.Errorf("sub task names = %v", names)
	}
}

func TestSubenvValidationReapplies(t *testing.T) {
	// Restricting to machine 1 strands task 0 (speed 0 there).
	e := MustFromECS([][]float64{{1, 0}, {1, 1}})
	if _, err := e.Subenv([]int{0, 1}, []int{1}); !errors.Is(err, ErrInvalid) {
		t.Errorf("stranded task not rejected: %v", err)
	}
}

func TestRemoveTaskAndMachine(t *testing.T) {
	e := MustFromECS([][]float64{{1, 2}, {3, 4}, {5, 6}})
	e2, err := e.RemoveTask(1)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Tasks() != 2 || e2.ECSAt(1, 0) != 5 {
		t.Errorf("RemoveTask wrong: %v", e2.ECS())
	}
	e3, err := e.RemoveMachine(0)
	if err != nil {
		t.Fatal(err)
	}
	if e3.Machines() != 1 || e3.ECSAt(2, 0) != 6 {
		t.Errorf("RemoveMachine wrong: %v", e3.ECS())
	}
}

func TestRemoveLastRejected(t *testing.T) {
	e := MustFromECS([][]float64{{1}})
	if _, err := e.RemoveTask(0); err == nil {
		t.Error("removing last task accepted")
	}
	if _, err := e.RemoveMachine(0); err == nil {
		t.Error("removing last machine accepted")
	}
}

func TestAddTask(t *testing.T) {
	e := MustFromECS([][]float64{{1, 2}})
	e2, err := e.AddTask("new", []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if e2.Tasks() != 2 || e2.ECSAt(1, 1) != 4 {
		t.Errorf("AddTask wrong: %v", e2.ECS())
	}
	if e2.TaskNames()[1] != "new" {
		t.Errorf("AddTask name = %v", e2.TaskNames())
	}
	if _, err := e.AddTask("bad", []float64{1}); err == nil {
		t.Error("wrong-length AddTask accepted")
	}
	if _, err := e.AddTask("zero", []float64{0, 0}); err == nil {
		t.Error("all-zero AddTask row accepted")
	}
}

func TestAddMachine(t *testing.T) {
	e := MustFromECS([][]float64{{1, 2}, {3, 4}})
	e2, err := e.AddMachine("gpu", []float64{9, 10})
	if err != nil {
		t.Fatal(err)
	}
	if e2.Machines() != 3 || e2.ECSAt(1, 2) != 10 {
		t.Errorf("AddMachine wrong: %v", e2.ECS())
	}
	if e2.MachineNames()[2] != "gpu" {
		t.Errorf("AddMachine name = %v", e2.MachineNames())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	e := MustFromETC([][]float64{{2, math.Inf(1)}, {5, 10}})
	e, _ = e.WithTaskNames([]string{"gcc", "mcf"})
	e, _ = e.WithMachineNames([]string{"xeon", "opteron"})
	var buf bytes.Buffer
	if err := e.WriteETCCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadETCCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualTol(back.ECS(), e.ECS(), 1e-12) {
		t.Errorf("CSV round trip changed ECS:\n%v\nvs\n%v", back.ECS(), e.ECS())
	}
	if back.TaskNames()[1] != "mcf" || back.MachineNames()[0] != "xeon" {
		t.Errorf("CSV round trip lost names: %v / %v", back.TaskNames(), back.MachineNames())
	}
}

func TestReadETCCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"header only": "task,m1\n",
		"bad number":  "task,m1\na,xyz\n",
		"no machines": "task\na\n",
		"zero etc":    "task,m1\na,0\n",
	}
	for name, in := range cases {
		if _, err := ReadETCCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	e := MustFromECS([][]float64{{1, 0}, {2, 3}})
	e, _ = e.WithTaskNames([]string{"a", "b"})
	e, _ = e.WithWeights([]float64{2, 1}, []float64{1, 4})
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var back Env
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualTol(back.ECS(), e.ECS(), 0) {
		t.Error("JSON round trip changed ECS")
	}
	if back.TaskNames()[0] != "a" {
		t.Errorf("JSON round trip lost names: %v", back.TaskNames())
	}
	if back.TaskWeights()[0] != 2 || back.MachineWeights()[1] != 4 {
		t.Errorf("JSON round trip lost weights: %v %v", back.TaskWeights(), back.MachineWeights())
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"all-zero row": `{"ecs":[[0,0],[1,1]]}`,
		"ragged rows":  `{"ecs":[[1],[]]}`, // regression: used to panic (found by fuzzing)
		"empty ecs":    `{"ecs":[]}`,
		"missing ecs":  `{}`,
	}
	for name, in := range cases {
		var e Env
		if err := json.Unmarshal([]byte(in), &e); err == nil {
			t.Errorf("%s: accepted by UnmarshalJSON", name)
		}
	}
}

func TestECSReturnsCopy(t *testing.T) {
	e := MustFromECS([][]float64{{1, 2}})
	c := e.ECS()
	c.Set(0, 0, 99)
	if e.ECSAt(0, 0) != 1 {
		t.Error("ECS() exposed internal storage")
	}
}

func TestStringer(t *testing.T) {
	e := MustFromECS([][]float64{{1, 2}})
	if got := e.String(); !strings.Contains(got, "1 task types x 2 machines") {
		t.Errorf("String = %q", got)
	}
}
