package core

import (
	"context"
	"errors"

	"repro/internal/etcmat"
	"repro/internal/linalg"
	"repro/internal/obs"
)

// Fleet-scale what-if screening. LeaveOneOut answers each removal exactly by
// re-standardizing the edited environment and recomputing its spectrum —
// O(k³) per delta even with warm starts, which at 10k×10k machines means the
// full leave-one-out table costs (t+m)·O(k³). LeaveOneOutSpectral instead
// uses the incremental downdating path (linalg.Downdater): the baseline
// standard form's eigensystem is computed once per side, after which every
// row/column removal updates the singular values in O(k²) via a rank-one
// secular equation.
//
// The screened TMA is approximate in exactly one way: removing a row or
// column of the standard form and *then* re-standardizing (what LeaveOneOut
// measures) is not the same as removing it alone. The two differ by a
// Sinkhorn rebalance whose scaling factors are within O(1/k) of 1 for a
// single removal from a balanced matrix, so screened deltas track exact ones
// to first order and preserve their ranking. The intended workflow is
// screen-then-verify: rank all t+m candidate removals with this function,
// then run the exact LeaveOneOut machinery on the shortlist.

// SpectralDelta is the screened (approximate) TMA shift from one structural
// edit; see LeaveOneOutSpectral.
type SpectralDelta struct {
	// Kind is "task" or "machine"; Index and Name identify what was removed.
	Kind  string
	Index int
	Name  string
	// TMA is the screened measure of the edited environment and DTMA its
	// difference against the exact baseline.
	TMA, DTMA float64
	// Err records edits that cannot be screened (removing the only task type
	// or machine).
	Err error
}

// errDegenerateEdit marks removals that leave no spectrum to screen.
var errDegenerateEdit = errors.New("core: removal leaves an empty environment")

// LeaveOneOutSpectral computes screened TMA deltas for removing each machine
// and each task type in turn, in O(k²) per delta after an O(k³) setup per
// side (k = min tasks, machines). The baseline TMA is exact (it reuses the
// memoized standard form); the per-removal values are the first-order
// approximation described above. The environment must be standardizable.
func LeaveOneOutSpectral(env *etcmat.Env) (baseTMA float64, deltas []SpectralDelta, err error) {
	return LeaveOneOutSpectralCtx(context.Background(), env)
}

// LeaveOneOutSpectralCtx is LeaveOneOutSpectral with stage tracing: when ctx
// carries an obs.Trace the screening pass is recorded as one
// "spectral_screen" span (the eigensystem builds and all t+m downdates).
func LeaveOneOutSpectralCtx(ctx context.Context, env *etcmat.Env) (baseTMA float64, deltas []SpectralDelta, err error) {
	res, sv, err := env.StandardFormCtx(ctx)
	if err != nil {
		return 0, nil, err
	}
	t, m := env.Tasks(), env.Machines()
	baseTMA = tmaFromSpectrum(sv, minInt(t, m))

	sp := obs.FromContext(ctx).StartSpan("spectral_screen")
	defer sp.End()

	// res.Scaled is the memoized standard form, shared and read-only; the
	// Downdater only ever reads it.
	dd := linalg.NewDowndater(res.Scaled)
	var buf []float64
	deltas = make([]SpectralDelta, 0, t+m)
	for j, name := range env.MachineNames() {
		d := SpectralDelta{Kind: "machine", Index: j, Name: name}
		if m < 2 {
			d.Err = errDegenerateEdit
		} else {
			buf = dd.DropColValues(j, buf[:0])
			d.TMA = tmaFromScreenedSpectrum(buf)
			d.DTMA = d.TMA - baseTMA
		}
		deltas = append(deltas, d)
	}
	for i, name := range env.TaskNames() {
		d := SpectralDelta{Kind: "task", Index: i, Name: name}
		if t < 2 {
			d.Err = errDegenerateEdit
		} else {
			buf = dd.DropRowValues(i, buf[:0])
			d.TMA = tmaFromScreenedSpectrum(buf)
			d.DTMA = d.TMA - baseTMA
		}
		deltas = append(deltas, d)
	}
	return baseTMA, deltas, nil
}

// tmaFromSpectrum evaluates the paper's TMA formula (Eq. 12) on a descending
// standard-form spectrum: the mean of the trailing singular values, σ₁ = 1
// excluded, clamped to [0, 1] against roundoff.
func tmaFromSpectrum(sv []float64, minTM int) float64 {
	if minTM <= 1 {
		return 0
	}
	s := 0.0
	for _, v := range sv[1:] {
		s += v
	}
	return clamp01(s / float64(minTM-1))
}

// tmaFromScreenedSpectrum evaluates TMA on a downdated spectrum. The edited
// standard form would have σ₁ = 1 exactly; the downdated spectrum is that of
// the *un-restandardized* submatrix, whose σ₁ drifts slightly below 1, so
// the values are renormalized by σ₁ first (TMA is invariant to global
// scaling, making this the scale-consistent reading of the screened σ).
func tmaFromScreenedSpectrum(sv []float64) float64 {
	if len(sv) <= 1 || sv[0] <= 0 {
		return 0
	}
	s := 0.0
	for _, v := range sv[1:] {
		s += v
	}
	return clamp01(s / (sv[0] * float64(len(sv)-1)))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// clamp01 guards against tolerance-level overshoot, as in TMACtx.
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
