package core

import (
	"repro/internal/etcmat"
	"repro/internal/linalg"
)

// TMALegacyColumnOnly computes task-machine affinity the way the paper's
// prior work did (its ref [2], HCW 2010): normalize each ECS *column* to
// unit sum — sufficient to decouple TMA from MPH — and average the
// non-maximum singular values relative to σ₁ (the paper's Eq. 5, which must
// divide by σ₁ because column normalization alone does not pin it to 1).
//
// This measure is kept for exactly the reason the paper gives for replacing
// it: with TDH in the picture, column-only normalization leaves the affinity
// number entangled with task difficulty spread. The EX10 experiment
// demonstrates the dependence; TMA (the standard-form version) is the fix.
//
// Deprecated: use TMA, the standard-form affinity this paper introduces.
// TMALegacyColumnOnly remains only for comparison studies against the prior
// work (EX10) and will not gain new capabilities.
func TMALegacyColumnOnly(env *etcmat.Env) float64 {
	w := env.WeightedECS()
	t, m := w.Dims()
	minTM := t
	if m < minTM {
		minTM = m
	}
	if minTM == 1 {
		return 0
	}
	cs := w.ColSums()
	for j := range cs {
		cs[j] = 1 / cs[j]
	}
	w.ScaleCols(cs)
	sv := linalg.SingularValues(w, nil)
	sum := 0.0
	for _, s := range sv[1:] {
		sum += s
	}
	val := sum / (float64(minTM-1) * sv[0])
	if val < 0 {
		return 0
	}
	if val > 1 {
		return 1
	}
	return val
}
