package core

import (
	"math"

	"repro/internal/etcmat"
	"repro/internal/matrix"
)

// Section II-E of the paper motivates TMA geometrically: "column correlation,
// which is quantified by the angle between the column vectors in the ECS
// matrix, represents task-machine affinity" — zero pairwise angles mean no
// affinity, larger angles mean machines rank task types differently. The
// singular-value formulation is the aggregate the paper settles on; this file
// provides the underlying pairwise-angle view for diagnostics and for the
// ablation experiment that correlates the two.

// ColumnAngles returns the M×M symmetric matrix of angles (radians, in
// [0, π/2]) between the weighted ECS columns of the environment. The
// diagonal is zero. A machine pair at angle 0 ranks all task types in
// proportion; a pair at π/2 serves disjoint task sets.
func ColumnAngles(env *etcmat.Env) *matrix.Dense {
	w := env.WeightedECS()
	m := env.Machines()
	cols := make([][]float64, m)
	norms := make([]float64, m)
	for j := 0; j < m; j++ {
		cols[j] = w.Col(j)
		norms[j] = matrix.Nrm2(cols[j])
	}
	out := matrix.New(m, m)
	for a := 0; a < m; a++ {
		for b := a + 1; b < m; b++ {
			var angle float64
			if norms[a] == 0 || norms[b] == 0 {
				angle = math.Pi / 2
			} else {
				c := matrix.Dot(cols[a], cols[b]) / (norms[a] * norms[b])
				// Clamp against rounding before acos.
				if c > 1 {
					c = 1
				}
				if c < 0 {
					c = 0
				}
				angle = math.Acos(c)
			}
			out.Set(a, b, angle)
			out.Set(b, a, angle)
		}
	}
	return out
}

// MeanColumnAngle returns the average pairwise column angle (radians), a
// scalar summary of the Sec. II-E geometric picture. 0 for rank-one
// environments; grows with affinity. Environments with a single machine have
// no pairs and return 0.
func MeanColumnAngle(env *etcmat.Env) float64 {
	m := env.Machines()
	if m < 2 {
		return 0
	}
	angles := ColumnAngles(env)
	sum := 0.0
	for a := 0; a < m; a++ {
		for b := a + 1; b < m; b++ {
			sum += angles.At(a, b)
		}
	}
	return sum / float64(m*(m-1)/2)
}

// MaxColumnAngle returns the largest pairwise column angle (radians) — the
// most-specialized machine pair.
func MaxColumnAngle(env *etcmat.Env) float64 {
	m := env.Machines()
	if m < 2 {
		return 0
	}
	angles := ColumnAngles(env)
	max := 0.0
	for a := 0; a < m; a++ {
		for b := a + 1; b < m; b++ {
			if v := angles.At(a, b); v > max {
				max = v
			}
		}
	}
	return max
}
