package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/etcmat"
	"repro/internal/stats"
)

// Figure 3's geometric claim (paper Sec. II-E): matrix (a) has all column
// angles 0, matrix (b) has every pair at a positive angle.
func TestColumnAnglesFigure3(t *testing.T) {
	a := etcmat.MustFromECS([][]float64{{1, 1, 1}, {2, 2, 2}, {3, 3, 3}})
	anglesA := ColumnAngles(a)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if anglesA.At(i, j) > 1e-7 {
				t.Errorf("(a): angle(%d,%d) = %g, want 0", i, j, anglesA.At(i, j))
			}
		}
	}
	b := etcmat.MustFromECS([][]float64{{4, 1, 1}, {1, 4, 1}, {1, 1, 4}})
	anglesB := ColumnAngles(b)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i != j && anglesB.At(i, j) < 0.1 {
				t.Errorf("(b): angle(%d,%d) = %g, want clearly positive", i, j, anglesB.At(i, j))
			}
		}
	}
}

func TestColumnAnglesSymmetricZeroDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	env := randomEnv(rng, 6, 5)
	angles := ColumnAngles(env)
	for i := 0; i < 5; i++ {
		if angles.At(i, i) != 0 {
			t.Errorf("diagonal (%d,%d) = %g", i, i, angles.At(i, i))
		}
		for j := 0; j < 5; j++ {
			if angles.At(i, j) != angles.At(j, i) {
				t.Errorf("asymmetric at (%d,%d)", i, j)
			}
			if angles.At(i, j) < 0 || angles.At(i, j) > math.Pi/2+1e-12 {
				t.Errorf("angle (%d,%d) = %g outside [0, pi/2]", i, j, angles.At(i, j))
			}
		}
	}
}

// Orthogonal columns (disjoint task support) are at angle pi/2 — the Fig. 4
// C pattern.
func TestColumnAnglesOrthogonal(t *testing.T) {
	env := etcmat.MustFromECS([][]float64{{1, 0}, {0, 1}})
	if got := MaxColumnAngle(env); math.Abs(got-math.Pi/2) > 1e-12 {
		t.Errorf("orthogonal columns angle = %g, want pi/2", got)
	}
	if got := MeanColumnAngle(env); math.Abs(got-math.Pi/2) > 1e-12 {
		t.Errorf("mean angle = %g, want pi/2", got)
	}
}

func TestMeanColumnAngleDegenerate(t *testing.T) {
	env := etcmat.MustFromECS([][]float64{{1}, {2}})
	if got := MeanColumnAngle(env); got != 0 {
		t.Errorf("single machine mean angle = %g, want 0", got)
	}
	if got := MaxColumnAngle(env); got != 0 {
		t.Errorf("single machine max angle = %g, want 0", got)
	}
}

// The aggregate claim behind TMA: across environments of increasing
// affinity, TMA and the mean column angle rank environments identically
// (they are different aggregates of the same geometry).
func TestTMACorrelatesWithColumnAngles(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	tmas := make([]float64, 0, 8)
	angles := make([]float64, 0, 8)
	// Mix a rank-1 base with increasing diagonal dominance.
	for k := 0; k <= 7; k++ {
		mix := float64(k) / 7
		rows := make([][]float64, 6)
		for i := range rows {
			rows[i] = make([]float64, 6)
			for j := range rows[i] {
				v := (1 - mix) * (1 + 0.01*rng.Float64())
				if i == j {
					v += mix * 6
				}
				rows[i][j] = v + 1e-9
			}
		}
		env := etcmat.MustFromECS(rows)
		r, err := TMA(env)
		if err != nil {
			t.Fatal(err)
		}
		tmas = append(tmas, r.TMA)
		angles = append(angles, MeanColumnAngle(env))
	}
	if rho := stats.Spearman(tmas, angles); rho < 0.99 {
		t.Errorf("TMA vs mean column angle Spearman = %g, want rank agreement", rho)
	}
}
