package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/etcmat"
)

func TestLeaveOneOutCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(160))
	env := randomEnv(rng, 4, 3)
	base, deltas := LeaveOneOut(env)
	if base == nil || base.TMAErr != nil {
		t.Fatalf("baseline bad: %v", base)
	}
	if len(deltas) != 4+3 {
		t.Fatalf("got %d deltas, want 7", len(deltas))
	}
	machines, tasks := 0, 0
	for _, d := range deltas {
		if d.Err != nil {
			t.Errorf("unexpected edit error for %s %s: %v", d.Kind, d.Name, d.Err)
			continue
		}
		switch d.Kind {
		case "machine":
			machines++
		case "task":
			tasks++
		default:
			t.Errorf("unknown kind %q", d.Kind)
		}
		if math.Abs(d.DMPH-(d.MPH-base.MPH)) > 1e-12 {
			t.Errorf("%s %s: DMPH inconsistent", d.Kind, d.Name)
		}
	}
	if machines != 3 || tasks != 4 {
		t.Errorf("kinds = %d machines, %d tasks", machines, tasks)
	}
}

// Removing one of two identical machines from an otherwise heterogeneous
// pair must raise MPH to exactly 1... no: with 2 identical and 1 different
// machine, removing the odd one makes the rest perfectly homogeneous.
func TestLeaveOneOutHomogenizes(t *testing.T) {
	env := etcmat.MustFromECS([][]float64{
		{1, 1, 9},
		{2, 2, 18},
	})
	_, deltas := LeaveOneOut(env)
	for _, d := range deltas {
		if d.Kind == "machine" && d.Index == 2 {
			if math.Abs(d.MPH-1) > 1e-12 {
				t.Errorf("removing the fast machine should give MPH 1, got %g", d.MPH)
			}
		}
	}
}

func TestLeaveOneOutSingletonErrors(t *testing.T) {
	env := etcmat.MustFromECS([][]float64{{1, 2}})
	_, deltas := LeaveOneOut(env)
	sawTaskErr := false
	for _, d := range deltas {
		if d.Kind == "task" && d.Err != nil {
			sawTaskErr = true
		}
	}
	if !sawTaskErr {
		t.Error("removing the only task type should report an error delta")
	}
}

// Removing a machine that strands a task type must surface the error, not
// panic.
func TestLeaveOneOutStrandedTask(t *testing.T) {
	env := etcmat.MustFromECS([][]float64{
		{1, 0},
		{1, 1},
	})
	_, deltas := LeaveOneOut(env)
	for _, d := range deltas {
		if d.Kind == "machine" && d.Index == 0 && d.Err == nil {
			t.Error("removing machine 0 strands task 0 and must error")
		}
	}
}

func TestSensitivitiesShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	env := randomEnv(rng, 3, 4)
	s, err := Sensitivities(env, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r, c := s.DMPH.Dims(); r != 3 || c != 4 {
		t.Errorf("DMPH dims = %dx%d", r, c)
	}
	if s.DTMA.HasNaN() {
		t.Error("unexpected NaN sensitivities on a positive environment")
	}
}

// Directional check: the sum of relative sensitivities over all entries is
// the derivative along a global rescaling, which every measure is invariant
// to — so each gradient must sum to ~0.
func TestSensitivitiesGlobalScalingDirectionIsNull(t *testing.T) {
	rng := rand.New(rand.NewSource(162))
	env := randomEnv(rng, 4, 4)
	s, err := Sensitivities(env, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range map[string]float64{
		"MPH": s.DMPH.Sum(),
		"TDH": s.DTDH.Sum(),
		"TMA": s.DTMA.Sum(),
	} {
		if math.Abs(m) > 1e-4 {
			t.Errorf("%s gradient sums to %g along the scaling direction, want ~0", name, m)
		}
	}
}

// Rows of the TMA gradient must also sum to ~0: scaling one task type's row
// is a diagonal scaling, which TMA is invariant to. Same for columns.
func TestSensitivitiesTMADiagonalDirectionsNull(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	env := randomEnv(rng, 4, 5)
	s, err := Sensitivities(env, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	for i, rowSum := range s.DTMA.RowSums() {
		if math.Abs(rowSum) > 1e-4 {
			t.Errorf("TMA row-%d gradient sum %g, want ~0 (row scaling invariance)", i, rowSum)
		}
	}
	for j, colSum := range s.DTMA.ColSums() {
		if math.Abs(colSum) > 1e-4 {
			t.Errorf("TMA col-%d gradient sum %g, want ~0 (column scaling invariance)", j, colSum)
		}
	}
}

// Finite-difference consistency: the gradient must predict the effect of a
// small single-entry perturbation to first order.
func TestSensitivitiesPredictPerturbation(t *testing.T) {
	rng := rand.New(rand.NewSource(164))
	env := randomEnv(rng, 3, 3)
	s, err := Sensitivities(env, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-3 // relative bump on entry (1, 2)
	ecs := env.ECS()
	ecs.Set(1, 2, ecs.At(1, 2)*(1+eps))
	bumped, err := etcmat.NewFromECS(ecs)
	if err != nil {
		t.Fatal(err)
	}
	basep := Characterize(env)
	newp := Characterize(bumped)
	predicted := basep.MPH + s.DMPH.At(1, 2)*eps
	if math.Abs(newp.MPH-predicted) > 1e-6 {
		t.Errorf("MPH: predicted %.8f, actual %.8f", predicted, newp.MPH)
	}
	predictedTMA := basep.TMA + s.DTMA.At(1, 2)*eps
	if math.Abs(newp.TMA-predictedTMA) > 1e-5 {
		t.Errorf("TMA: predicted %.8f, actual %.8f", predictedTMA, newp.TMA)
	}
}

func TestSensitivitiesZeroEntriesSkipped(t *testing.T) {
	env := etcmat.MustFromECS([][]float64{
		{1, 0},
		{1, 1},
	})
	s, err := Sensitivities(env, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.DMPH.At(0, 1) != 0 || s.DTDH.At(0, 1) != 0 || s.DTMA.At(0, 1) != 0 {
		t.Error("zero entry should have zero reported sensitivity")
	}
}
