package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/etcmat"
)

func TestLegacyTMAZeroForRankOne(t *testing.T) {
	env := etcmat.MustFromECS([][]float64{{1, 2}, {2, 4}, {3, 6}})
	if got := TMALegacyColumnOnly(env); got > 1e-9 {
		t.Errorf("legacy TMA of rank-1 environment = %g, want 0", got)
	}
}

func TestLegacyTMAOneForOrthogonal(t *testing.T) {
	env := etcmat.MustFromECS([][]float64{{1, 0}, {0, 1}})
	if got := TMALegacyColumnOnly(env); math.Abs(got-1) > 1e-9 {
		t.Errorf("legacy TMA of identity = %g, want 1", got)
	}
}

func TestLegacyTMADegenerateShape(t *testing.T) {
	env := etcmat.MustFromECS([][]float64{{1}, {2}})
	if got := TMALegacyColumnOnly(env); got != 0 {
		t.Errorf("single-machine legacy TMA = %g, want 0", got)
	}
}

// The legacy measure is independent of MPH (column normalization removes
// column scalings) — that part the 2010 paper got right.
func TestLegacyTMAIndependentOfColumnScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(170))
	env := randomEnv(rng, 5, 4)
	base := TMALegacyColumnOnly(env)
	ecs := env.ECS()
	ecs.ScaleCols([]float64{0.1, 5, 2, 33})
	scaled, err := etcmat.NewFromECS(ecs)
	if err != nil {
		t.Fatal(err)
	}
	if got := TMALegacyColumnOnly(scaled); math.Abs(got-base) > 1e-9 {
		t.Errorf("legacy TMA moved under column scaling: %g vs %g", got, base)
	}
}

// The defect this paper fixes: the legacy measure is NOT independent of row
// (task difficulty) scalings, while the standard-form TMA is. This is the
// paper's stated motivation for the standard ECS matrix (Sec. III).
func TestLegacyTMADependsOnRowScalingButTMADoesNot(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	env := randomEnv(rng, 6, 4)
	legacyBase := TMALegacyColumnOnly(env)
	newBase, err := TMA(env)
	if err != nil {
		t.Fatal(err)
	}
	// Stretch the task difficulty spread hard.
	ecs := env.ECS()
	ecs.ScaleRows([]float64{1, 10, 100, 1000, 10000, 100000})
	scaled, err := etcmat.NewFromECS(ecs)
	if err != nil {
		t.Fatal(err)
	}
	legacyScaled := TMALegacyColumnOnly(scaled)
	newScaled, err := TMA(scaled)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(legacyScaled-legacyBase) < 1e-3 {
		t.Errorf("legacy TMA unexpectedly invariant to row scaling: %g vs %g (the 2010 defect should show)",
			legacyScaled, legacyBase)
	}
	if math.Abs(newScaled.TMA-newBase.TMA) > 1e-6 {
		t.Errorf("standard-form TMA moved under row scaling: %g vs %g", newScaled.TMA, newBase.TMA)
	}
}
