package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/etcmat"
	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/sinkhorn"
)

// This file implements the paper's what-if application (Sec. I: "what-if
// studies to identify the effect of adding/removing task types or machines
// from an HC system on its heterogeneity") as first-class library calls:
// leave-one-out deltas and entrywise sensitivities.

// Delta is the measure shift caused by one structural edit.
type Delta struct {
	// Kind is "task" or "machine"; Index and Name identify what was removed.
	Kind  string
	Index int
	Name  string
	// MPH, TDH, TMA are the edited environment's measures; DMPH, DTDH, DTMA
	// are the differences against the baseline. TMA deltas are NaN when
	// either side is not standardizable.
	MPH, TDH, TMA    float64
	DMPH, DTDH, DTMA float64
	// SinkhornIterations is the number of normalization rounds the edited
	// environment's standardization took. Each leave-one-out solve is seeded
	// with the baseline's scaling vectors (minus the removed index), so this
	// is typically a small fraction of the baseline Profile's count — the
	// observable proof of the warm start.
	SinkhornIterations int
	// Err records edits that produce an invalid environment (for example,
	// removing the only machine a task type can run on).
	Err error
}

// LeaveOneOut computes the measure deltas from removing each machine and
// each task type in turn. Environments with a single task type or machine
// yield errors for the corresponding edits rather than panicking.
//
// Each edited environment differs from the baseline by one row or column,
// so its standardization is warm-started from the baseline's converged
// scaling vectors with the removed index dropped (etcmat.Env.
// StandardFormSeed / sinkhorn.WarmStart): the profiles are identical to the
// cold ones up to the convergence tolerance — the Sinkhorn limit is unique
// (Theorem 1) — but converge in a fraction of the rounds.
func LeaveOneOut(env *etcmat.Env) (baseline *Profile, deltas []Delta) {
	return LeaveOneOutCtx(context.Background(), env)
}

// LeaveOneOutCtx is LeaveOneOut with stage tracing: each characterization
// emits its usual "measures"/"standardize"/"gram"/"eigensolve" spans when ctx
// carries an obs.Trace.
func LeaveOneOutCtx(ctx context.Context, env *etcmat.Env) (baseline *Profile, deltas []Delta) {
	baseline = CharacterizeCtx(ctx, env)
	seed := env.StandardFormSeed()
	refresh := newSeedRefresher(env, seed)
	for j, name := range env.MachineNames() {
		d := Delta{Kind: "machine", Index: j, Name: name}
		edited, err := env.RemoveMachine(j)
		if err != nil {
			d.Err = err
		} else {
			edited = edited.WithStandardFormSeed(refresh.dropCol(seed, j))
			fillDelta(&d, baseline, CharacterizeCtx(ctx, edited))
		}
		deltas = append(deltas, d)
	}
	for i, name := range env.TaskNames() {
		d := Delta{Kind: "task", Index: i, Name: name}
		edited, err := env.RemoveTask(i)
		if err != nil {
			d.Err = err
		} else {
			edited = edited.WithStandardFormSeed(refresh.dropRow(seed, i))
			fillDelta(&d, baseline, CharacterizeCtx(ctx, edited))
		}
		deltas = append(deltas, d)
	}
	return baseline, deltas
}

// seedRefreshMin is the short-side size at which LeaveOneOutCtx starts
// refreshing each dropped seed's σ₂ through the downdating path. Below it
// the stale baseline σ₂ is an adequate over-relaxation hint (the optimum is
// flat — see sinkhorn.WarmStart.omega) and the eigensystem build would cost
// more than it saves; at fleet scale the O(k³) build amortizes over the t+m
// removals and each refresh is an O(k²) rank-one downdate.
const seedRefreshMin = 256

// seedRefresher upgrades the leave-one-out seeds with per-removal σ₂ values
// from the incremental downdating path. A nil refresher (small environment,
// no baseline seed, or unstandardizable baseline) degrades to the plain
// DropRow/DropCol seeds with the carried-over baseline σ₂.
type seedRefresher struct {
	dd  *linalg.Downdater
	buf []float64
}

func newSeedRefresher(env *etcmat.Env, seed *sinkhorn.WarmStart) *seedRefresher {
	if seed == nil || minInt(env.Tasks(), env.Machines()) < seedRefreshMin {
		return nil
	}
	res, _, err := env.StandardForm()
	if err != nil || res == nil {
		return nil
	}
	// res.Scaled is the memoized standard form, shared and read-only.
	return &seedRefresher{dd: linalg.NewDowndater(res.Scaled)}
}

func (r *seedRefresher) dropCol(seed *sinkhorn.WarmStart, j int) *sinkhorn.WarmStart {
	s := seed.DropCol(j)
	if r == nil || s == nil {
		return s
	}
	r.buf = r.dd.DropColValues(j, r.buf[:0])
	r.apply(s)
	return s
}

func (r *seedRefresher) dropRow(seed *sinkhorn.WarmStart, i int) *sinkhorn.WarmStart {
	s := seed.DropRow(i)
	if r == nil || s == nil {
		return s
	}
	r.buf = r.dd.DropRowValues(i, r.buf[:0])
	r.apply(s)
	return s
}

// apply reads the downdated spectrum as the edited environment's σ₂. The
// downdated matrix is the standard form minus one line, not yet
// re-standardized, so its σ₁ drifts slightly below 1; the ratio σ₂/σ₁ is the
// scale-consistent subdominant value the re-standardized matrix will have to
// first order.
func (r *seedRefresher) apply(s *sinkhorn.WarmStart) {
	if len(r.buf) > 1 && r.buf[0] > 0 {
		s.Sigma2 = r.buf[1] / r.buf[0]
	}
}

func fillDelta(d *Delta, base, p *Profile) {
	d.MPH, d.TDH, d.TMA = p.MPH, p.TDH, p.TMA
	d.SinkhornIterations = p.SinkhornIterations
	d.DMPH = p.MPH - base.MPH
	d.DTDH = p.TDH - base.TDH
	if base.TMAErr != nil || p.TMAErr != nil {
		d.DTMA = math.NaN()
	} else {
		d.DTMA = p.TMA - base.TMA
	}
}

// Sensitivity holds entrywise finite-difference gradients of the three
// measures with respect to relative perturbations of the ECS entries:
// entry (i, j) of DMPH approximates d MPH / d log ECS(i, j) — the measure
// shift per unit *relative* speed change of task i on machine j. Relative
// derivatives are the natural scale-free choice here (the measures are
// invariant to global scaling, so absolute derivatives would mix units).
type Sensitivity struct {
	DMPH, DTDH, DTMA *matrix.Dense
}

// Sensitivities computes central finite-difference gradients with relative
// step h (default 1e-4 when h <= 0). The environment must be standardizable;
// the cost is 2·T·M characterizations, each warm-started from the baseline
// scaling vectors (the perturbed matrix differs by one entry, so the seed is
// within O(h) of the true scaling).
func Sensitivities(env *etcmat.Env, h float64) (*Sensitivity, error) {
	if h <= 0 {
		h = 1e-4
	}
	base := Characterize(env)
	if base.TMAErr != nil {
		return nil, fmt.Errorf("core: Sensitivities needs a standardizable environment: %w", base.TMAErr)
	}
	seed := env.StandardFormSeed()
	t, m := env.Tasks(), env.Machines()
	out := &Sensitivity{
		DMPH: matrix.New(t, m),
		DTDH: matrix.New(t, m),
		DTMA: matrix.New(t, m),
	}
	ecs := env.ECS()
	for i := 0; i < t; i++ {
		for j := 0; j < m; j++ {
			v := ecs.At(i, j)
			if v == 0 {
				// A zero entry cannot be perturbed multiplicatively; its
				// sensitivities are reported as zero.
				continue
			}
			up, err := perturbed(env, ecs, i, j, v*(1+h), seed)
			if err != nil {
				return nil, err
			}
			down, err := perturbed(env, ecs, i, j, v*(1-h), seed)
			if err != nil {
				return nil, err
			}
			// d/d log v  =  v * d/dv ; central difference over log step 2h.
			out.DMPH.Set(i, j, (up.MPH-down.MPH)/(2*h))
			out.DTDH.Set(i, j, (up.TDH-down.TDH)/(2*h))
			if up.TMAErr != nil || down.TMAErr != nil {
				out.DTMA.Set(i, j, math.NaN())
			} else {
				out.DTMA.Set(i, j, (up.TMA-down.TMA)/(2*h))
			}
		}
	}
	return out, nil
}

func perturbed(env *etcmat.Env, ecs *matrix.Dense, i, j int, v float64, seed *sinkhorn.WarmStart) (*Profile, error) {
	mod := ecs.Clone()
	mod.Set(i, j, v)
	edited, err := etcmat.NewFromECS(mod)
	if err != nil {
		return nil, err
	}
	edited, err = edited.WithWeights(env.TaskWeights(), env.MachineWeights())
	if err != nil {
		return nil, err
	}
	return Characterize(edited.WithStandardFormSeed(seed)), nil
}
