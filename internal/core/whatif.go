package core

import (
	"fmt"
	"math"

	"repro/internal/etcmat"
	"repro/internal/matrix"
)

// This file implements the paper's what-if application (Sec. I: "what-if
// studies to identify the effect of adding/removing task types or machines
// from an HC system on its heterogeneity") as first-class library calls:
// leave-one-out deltas and entrywise sensitivities.

// Delta is the measure shift caused by one structural edit.
type Delta struct {
	// Kind is "task" or "machine"; Index and Name identify what was removed.
	Kind  string
	Index int
	Name  string
	// MPH, TDH, TMA are the edited environment's measures; DMPH, DTDH, DTMA
	// are the differences against the baseline. TMA deltas are NaN when
	// either side is not standardizable.
	MPH, TDH, TMA    float64
	DMPH, DTDH, DTMA float64
	// Err records edits that produce an invalid environment (for example,
	// removing the only machine a task type can run on).
	Err error
}

// LeaveOneOut computes the measure deltas from removing each machine and
// each task type in turn. Environments with a single task type or machine
// yield errors for the corresponding edits rather than panicking.
func LeaveOneOut(env *etcmat.Env) (baseline *Profile, deltas []Delta) {
	baseline = Characterize(env)
	for j, name := range env.MachineNames() {
		d := Delta{Kind: "machine", Index: j, Name: name}
		edited, err := env.RemoveMachine(j)
		if err != nil {
			d.Err = err
		} else {
			fillDelta(&d, baseline, Characterize(edited))
		}
		deltas = append(deltas, d)
	}
	for i, name := range env.TaskNames() {
		d := Delta{Kind: "task", Index: i, Name: name}
		edited, err := env.RemoveTask(i)
		if err != nil {
			d.Err = err
		} else {
			fillDelta(&d, baseline, Characterize(edited))
		}
		deltas = append(deltas, d)
	}
	return baseline, deltas
}

func fillDelta(d *Delta, base, p *Profile) {
	d.MPH, d.TDH, d.TMA = p.MPH, p.TDH, p.TMA
	d.DMPH = p.MPH - base.MPH
	d.DTDH = p.TDH - base.TDH
	if base.TMAErr != nil || p.TMAErr != nil {
		d.DTMA = math.NaN()
	} else {
		d.DTMA = p.TMA - base.TMA
	}
}

// Sensitivity holds entrywise finite-difference gradients of the three
// measures with respect to relative perturbations of the ECS entries:
// entry (i, j) of DMPH approximates d MPH / d log ECS(i, j) — the measure
// shift per unit *relative* speed change of task i on machine j. Relative
// derivatives are the natural scale-free choice here (the measures are
// invariant to global scaling, so absolute derivatives would mix units).
type Sensitivity struct {
	DMPH, DTDH, DTMA *matrix.Dense
}

// Sensitivities computes central finite-difference gradients with relative
// step h (default 1e-4 when h <= 0). The environment must be standardizable;
// the cost is 2·T·M characterizations.
func Sensitivities(env *etcmat.Env, h float64) (*Sensitivity, error) {
	if h <= 0 {
		h = 1e-4
	}
	base := Characterize(env)
	if base.TMAErr != nil {
		return nil, fmt.Errorf("core: Sensitivities needs a standardizable environment: %w", base.TMAErr)
	}
	t, m := env.Tasks(), env.Machines()
	out := &Sensitivity{
		DMPH: matrix.New(t, m),
		DTDH: matrix.New(t, m),
		DTMA: matrix.New(t, m),
	}
	ecs := env.ECS()
	for i := 0; i < t; i++ {
		for j := 0; j < m; j++ {
			v := ecs.At(i, j)
			if v == 0 {
				// A zero entry cannot be perturbed multiplicatively; its
				// sensitivities are reported as zero.
				continue
			}
			up, err := perturbed(env, ecs, i, j, v*(1+h))
			if err != nil {
				return nil, err
			}
			down, err := perturbed(env, ecs, i, j, v*(1-h))
			if err != nil {
				return nil, err
			}
			// d/d log v  =  v * d/dv ; central difference over log step 2h.
			out.DMPH.Set(i, j, (up.MPH-down.MPH)/(2*h))
			out.DTDH.Set(i, j, (up.TDH-down.TDH)/(2*h))
			if up.TMAErr != nil || down.TMAErr != nil {
				out.DTMA.Set(i, j, math.NaN())
			} else {
				out.DTMA.Set(i, j, (up.TMA-down.TMA)/(2*h))
			}
		}
	}
	return out, nil
}

func perturbed(env *etcmat.Env, ecs *matrix.Dense, i, j int, v float64) (*Profile, error) {
	mod := ecs.Clone()
	mod.Set(i, j, v)
	edited, err := etcmat.NewFromECS(mod)
	if err != nil {
		return nil, err
	}
	edited, err = edited.WithWeights(env.TaskWeights(), env.MachineWeights())
	if err != nil {
		return nil, err
	}
	return Characterize(edited), nil
}
