package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/etcmat"
	"repro/internal/matrix"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// perfEnv builds a 1-task environment whose machine performances are exactly
// the given values — the shape of the paper's Figure 2 environments.
func perfEnv(perfs []float64) *etcmat.Env {
	return etcmat.MustFromECS([][]float64{perfs})
}

// Figure 2 of the paper, verbatim: four 5-machine environments and the
// published values of MPH, R, G and COV for each.
func TestFigure2PublishedValues(t *testing.T) {
	cases := []struct {
		name           string
		perfs          []float64
		mph, r, g, cov float64
		tol            float64
	}{
		{"env1", []float64{1, 2, 4, 8, 16}, 0.5, 0.06, 0.5, 0.88, 0.005},
		{"env2", []float64{1, 1, 1, 1, 16}, 0.77, 0.06, 0.5, 1.5, 0.005},
		{"env3", []float64{1, 16, 16, 16, 16}, 0.77, 0.06, 0.5, 0.46, 0.005},
		// MPH(env4) = 0.625 exactly; the paper prints the 2-d.p. rounding
		// 0.63, so the tolerance is one half-ulp of two decimals.
		{"env4", []float64{1, 4, 4, 4, 16}, 0.63, 0.06, 0.5, 0.90, 0.0051},
	}
	for _, c := range cases {
		env := perfEnv(c.perfs)
		if got := MPH(env); !almost(got, c.mph, c.tol) {
			t.Errorf("%s: MPH = %.4f, want %.2f", c.name, got, c.mph)
		}
		if got := RatioR(env); !almost(got, c.r, c.tol) {
			t.Errorf("%s: R = %.4f, want %.2f", c.name, got, c.r)
		}
		if got := GeoMeanG(env); !almost(got, c.g, c.tol) {
			t.Errorf("%s: G = %.4f, want %.2f", c.name, got, c.g)
		}
		if got := COV(env); !almost(got, c.cov, c.tol) {
			t.Errorf("%s: COV = %.4f, want %.2f", c.name, got, c.cov)
		}
	}
}

// The paper's Figure 2 ordering argument: MPH must rank env1 as most
// heterogeneous (lowest), env2 and env3 as equally most homogeneous, and
// env4 in between, while R and G fail to separate any of them.
func TestFigure2MPHMatchesIntuition(t *testing.T) {
	mph1 := MPH(perfEnv([]float64{1, 2, 4, 8, 16}))
	mph2 := MPH(perfEnv([]float64{1, 1, 1, 1, 16}))
	mph3 := MPH(perfEnv([]float64{1, 16, 16, 16, 16}))
	mph4 := MPH(perfEnv([]float64{1, 4, 4, 4, 16}))
	if !(mph1 < mph4 && mph4 < mph2) {
		t.Errorf("MPH ordering violated: env1 %.3f < env4 %.3f < env2 %.3f expected", mph1, mph4, mph2)
	}
	if !almost(mph2, mph3, 1e-12) {
		t.Errorf("env2 and env3 must have equal MPH: %.4f vs %.4f", mph2, mph3)
	}
	r1 := RatioR(perfEnv([]float64{1, 2, 4, 8, 16}))
	r2 := RatioR(perfEnv([]float64{1, 1, 1, 1, 16}))
	if !almost(r1, r2, 1e-12) {
		t.Errorf("R fails intuition by design but must at least be equal here: %.4f vs %.4f", r1, r2)
	}
}

// Figure 1 (reconstructed; paper states machine 1's performance is 17): the
// performance of a machine is its ECS column sum.
func TestFigure1MachinePerformance(t *testing.T) {
	env := etcmat.MustFromECS([][]float64{
		{2, 3, 8},
		{6, 5, 7},
		{4, 2, 9},
		{5, 1, 6},
	})
	mp := MachinePerformances(env)
	if mp[0] != 17 {
		t.Errorf("MP_1 = %g, want 17 (paper Fig. 1)", mp[0])
	}
	if mp[1] != 11 || mp[2] != 30 {
		t.Errorf("MP = %v, want [17 11 30]", mp)
	}
}

// Figure 3 (reconstructed): both matrices have equal column sums (MPH = 1);
// (a) has proportional columns (no affinity, TMA = 0) while (b) has
// angle-separated columns (TMA > 0).
func TestFigure3AffinityContrast(t *testing.T) {
	a := etcmat.MustFromECS([][]float64{{1, 1, 1}, {2, 2, 2}, {3, 3, 3}})
	b := etcmat.MustFromECS([][]float64{{4, 1, 1}, {1, 4, 1}, {1, 1, 4}})
	if got := MPH(a); !almost(got, 1, 1e-12) {
		t.Errorf("(a) MPH = %g, want 1", got)
	}
	if got := MPH(b); !almost(got, 1, 1e-12) {
		t.Errorf("(b) MPH = %g, want 1", got)
	}
	ra, err := TMA(a)
	if err != nil {
		t.Fatal(err)
	}
	if ra.TMA > 1e-6 {
		t.Errorf("(a) TMA = %g, want 0 (proportional columns)", ra.TMA)
	}
	rb, err := TMA(b)
	if err != nil {
		t.Fatal(err)
	}
	if rb.TMA <= 0.1 {
		t.Errorf("(b) TMA = %g, want clearly positive", rb.TMA)
	}
}

// fig4 returns the eight reconstructed extreme 2x2 matrices of Figure 4.
// The paper specifies each matrix's qualitative profile exactly:
// A-D have TMA = 1, E-H have TMA = 0; C,D,G,H have high MPH, A,B,E,F low;
// A,C,E,G have high TDH, B,D,F,H low.
func fig4() map[string]*etcmat.Env {
	return map[string]*etcmat.Env{
		"A": etcmat.MustFromECS([][]float64{{0, 10}, {1, 9}}),
		"B": etcmat.MustFromECS([][]float64{{0, 1}, {4, 95}}),
		"C": etcmat.MustFromECS([][]float64{{1, 0}, {0, 1}}),
		"D": etcmat.MustFromECS([][]float64{{10, 0}, {45, 55}}),
		"E": etcmat.MustFromECS([][]float64{{0.1, 9.9}, {0.1, 9.9}}),
		"F": etcmat.MustFromECS([][]float64{{0.01, 0.99}, {0.99, 98.01}}),
		"G": etcmat.MustFromECS([][]float64{{1, 1}, {1, 1}}),
		"H": etcmat.MustFromECS([][]float64{{0.1, 0.1}, {9.9, 9.9}}),
	}
}

func TestFigure4ExtremeProfiles(t *testing.T) {
	highMPH := map[string]bool{"C": true, "D": true, "G": true, "H": true}
	highTDH := map[string]bool{"A": true, "C": true, "E": true, "G": true}
	tmaOne := map[string]bool{"A": true, "B": true, "C": true, "D": true}
	for name, env := range fig4() {
		p := Characterize(env)
		if p.TMAErr != nil {
			t.Fatalf("%s: TMA error: %v", name, p.TMAErr)
		}
		if highMPH[name] && p.MPH < 0.9 {
			t.Errorf("%s: MPH = %.3f, want high (>= 0.9)", name, p.MPH)
		}
		if !highMPH[name] && p.MPH > 0.2 {
			t.Errorf("%s: MPH = %.3f, want low (<= 0.2)", name, p.MPH)
		}
		if highTDH[name] && p.TDH < 0.9 {
			t.Errorf("%s: TDH = %.3f, want high (>= 0.9)", name, p.TDH)
		}
		if !highTDH[name] && p.TDH > 0.2 {
			t.Errorf("%s: TDH = %.3f, want low (<= 0.2)", name, p.TDH)
		}
		if tmaOne[name] && !almost(p.TMA, 1, 1e-6) {
			t.Errorf("%s: TMA = %.6f, want 1", name, p.TMA)
		}
		if !tmaOne[name] && p.TMA > 1e-6 {
			t.Errorf("%s: TMA = %.6g, want 0", name, p.TMA)
		}
	}
}

// The paper: "When the procedure in Equation 9 is applied to matrices A, B,
// and D they all converge to the standard form of C."
func TestFigure4ABDConvergeToStandardFormOfC(t *testing.T) {
	envs := fig4()
	rc, err := TMA(envs["C"])
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"A", "B", "D"} {
		r, err := TMA(envs[name])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Trimmed == 0 {
			t.Errorf("%s: expected an unsupported entry to vanish in the limit", name)
		}
		// The standard forms agree up to the row/column permutation induced
		// by the zero pattern: compare sorted singular values and the sorted
		// entry multiset instead of exact layout.
		if !matrix.VecEqualTol(r.SingularValues, rc.SingularValues, 1e-6) {
			t.Errorf("%s: singular values %v != C's %v", name, r.SingularValues, rc.SingularValues)
		}
		got := matrix.SortedAscending(r.Standard.RawData())
		want := matrix.SortedAscending(rc.Standard.RawData())
		if !matrix.VecEqualTol(got, want, 1e-6) {
			t.Errorf("%s: standard form entries %v != C's %v", name, got, want)
		}
	}
}

// The C matrix of Figure 4 is already standard and its second singular value
// is 1 (paper Sec. IV).
func TestFigure4CAlreadyStandard(t *testing.T) {
	r, err := TMA(fig4()["C"])
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r.SingularValues[1], 1, 1e-9) {
		t.Errorf("σ2 = %g, want 1", r.SingularValues[1])
	}
	if r.Iterations != 1 {
		t.Errorf("identity should balance immediately, took %d iterations", r.Iterations)
	}
}

func TestMPHBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 50; trial++ {
		env := randomEnv(rng, 2+rng.Intn(8), 2+rng.Intn(8))
		for _, v := range []struct {
			name string
			val  float64
		}{{"MPH", MPH(env)}, {"TDH", TDH(env)}} {
			if !(v.val > 0 && v.val <= 1+1e-12) {
				t.Fatalf("trial %d: %s = %g out of (0,1]", trial, v.name, v.val)
			}
		}
	}
}

func TestTMABounds(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		env := randomEnv(rng, 2+rng.Intn(6), 2+rng.Intn(6))
		r, err := TMA(env)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if r.TMA < 0 || r.TMA > 1 {
			t.Fatalf("trial %d: TMA = %g out of [0,1]", trial, r.TMA)
		}
		if !almost(r.SingularValues[0], 1, 1e-6) {
			t.Fatalf("trial %d: σ1 = %g, want 1 (Theorem 2)", trial, r.SingularValues[0])
		}
	}
}

// Property 2 of the paper's heterogeneity-measure requirements: no measure
// changes when the ECS matrix is scaled by a common factor (time units).
func TestAllMeasuresScaleInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	env := randomEnv(rng, 6, 4)
	scaled, err := etcmat.NewFromECS(env.ECS().Scale(3600)) // seconds -> hours
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := Characterize(env), Characterize(scaled)
	if !almost(p1.MPH, p2.MPH, 1e-9) || !almost(p1.TDH, p2.TDH, 1e-9) || !almost(p1.TMA, p2.TMA, 1e-6) {
		t.Errorf("measures changed under unit scaling: %v vs %v", p1, p2)
	}
	if !almost(p1.RatioR, p2.RatioR, 1e-9) || !almost(p1.GeoMeanG, p2.GeoMeanG, 1e-9) || !almost(p1.COV, p2.COV, 1e-9) {
		t.Errorf("comparison measures changed under unit scaling")
	}
}

// Property 3 (independence): TMA must be unchanged by any positive row or
// column rescaling of the ECS matrix, because standardization divides such
// factors out. This is exactly why the paper introduces the standard form.
func TestTMAIndependentOfRowColumnScalings(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	env := randomEnv(rng, 5, 7)
	base, err := TMA(env)
	if err != nil {
		t.Fatal(err)
	}
	ecs := env.ECS()
	d1 := make([]float64, 5)
	d2 := make([]float64, 7)
	for i := range d1 {
		d1[i] = 0.2 + rng.Float64()*8
	}
	for j := range d2 {
		d2[j] = 0.2 + rng.Float64()*8
	}
	ecs.ScaleRows(d1).ScaleCols(d2)
	scaledEnv, err := etcmat.NewFromECS(ecs)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := TMA(scaledEnv)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(base.TMA, scaled.TMA, 1e-6) {
		t.Errorf("TMA changed under diagonal rescaling: %g vs %g — measures not independent", base.TMA, scaled.TMA)
	}
	// Meanwhile MPH and TDH do change, demonstrating that the three measures
	// probe different aspects.
	if almost(MPH(env), MPH(scaledEnv), 1e-6) && almost(TDH(env), TDH(scaledEnv), 1e-6) {
		t.Log("note: random scaling accidentally preserved MPH and TDH")
	}
}

// Zero affinity iff rank-1 ECS: outer-product environments must give TMA 0.
func TestTMAZeroForRankOne(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 10; trial++ {
		tn, mn := 2+rng.Intn(6), 2+rng.Intn(6)
		u := make([]float64, tn)
		v := make([]float64, mn)
		for i := range u {
			u[i] = 0.5 + rng.Float64()*4
		}
		for j := range v {
			v[j] = 0.5 + rng.Float64()*4
		}
		rows := make([][]float64, tn)
		for i := range rows {
			rows[i] = make([]float64, mn)
			for j := range rows[i] {
				rows[i][j] = u[i] * v[j]
			}
		}
		r, err := TMA(etcmat.MustFromECS(rows))
		if err != nil {
			t.Fatal(err)
		}
		if r.TMA > 1e-6 {
			t.Errorf("trial %d: rank-1 environment has TMA = %g, want 0", trial, r.TMA)
		}
	}
}

// Maximal affinity: a (scaled) permutation-structured ECS has TMA = 1.
func TestTMAOneForPermutationStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	n := 5
	perm := rng.Perm(n)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, n)
		rows[i][perm[i]] = 1 + rng.Float64()*9
	}
	r, err := TMA(etcmat.MustFromECS(rows))
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r.TMA, 1, 1e-6) {
		t.Errorf("permutation environment TMA = %g, want 1", r.TMA)
	}
}

// Degenerate shapes: one machine or one task type has no affinity dimension.
func TestTMADegenerateShapes(t *testing.T) {
	oneMachine := etcmat.MustFromECS([][]float64{{1}, {2}, {3}})
	r, err := TMA(oneMachine)
	if err != nil {
		t.Fatal(err)
	}
	if r.TMA != 0 {
		t.Errorf("single-machine TMA = %g, want 0", r.TMA)
	}
	if got := MPH(oneMachine); got != 1 {
		t.Errorf("single-machine MPH = %g, want 1", got)
	}
	oneTask := etcmat.MustFromECS([][]float64{{1, 2, 3}})
	if got := TDH(oneTask); got != 1 {
		t.Errorf("single-task TDH = %g, want 1", got)
	}
}

// Weights enter MP and TD exactly as in Eqs. 4 and 6.
func TestWeightedPerformancesAndDifficulties(t *testing.T) {
	env := etcmat.MustFromECS([][]float64{{1, 2}, {3, 4}})
	env, err := env.WithWeights([]float64{2, 1}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	// MP_j = w_m(j) * sum_i w_t(i) ECS(i,j):
	// MP_1 = 1*(2*1 + 1*3) = 5 ; MP_2 = 3*(2*2 + 1*4) = 24.
	mp := MachinePerformances(env)
	if !matrix.VecEqualTol(mp, []float64{5, 24}, 1e-12) {
		t.Errorf("weighted MP = %v, want [5 24]", mp)
	}
	// TD_i = w_t(i) * sum_j w_m(j) ECS(i,j):
	// TD_1 = 2*(1*1 + 3*2) = 14 ; TD_2 = 1*(1*3 + 3*4) = 15.
	td := TaskDifficulties(env)
	if !matrix.VecEqualTol(td, []float64{14, 15}, 1e-12) {
		t.Errorf("weighted TD = %v, want [14 15]", td)
	}
}

// Weights change the measures (they are part of the environment definition).
func TestWeightsAffectMeasures(t *testing.T) {
	env := etcmat.MustFromECS([][]float64{{1, 2}, {3, 4}})
	weighted, _ := env.WithWeights([]float64{10, 1}, nil)
	if almost(TDH(env), TDH(weighted), 1e-9) {
		t.Error("task weights had no effect on TDH")
	}
}

func TestCanonicalForm(t *testing.T) {
	env := etcmat.MustFromECS([][]float64{
		{5, 1}, // TD = 6
		{1, 1}, // TD = 2
	})
	canon, taskPerm, machPerm := CanonicalForm(env)
	// Task rows ascending by difficulty: row "TD=2" first.
	if taskPerm[0] != 1 || taskPerm[1] != 0 {
		t.Errorf("taskPerm = %v", taskPerm)
	}
	// Machine columns ascending by performance: col sums are 6 and 2.
	if machPerm[0] != 1 || machPerm[1] != 0 {
		t.Errorf("machPerm = %v", machPerm)
	}
	if !matrix.IsSortedAscending(canon.RowSums()) {
		t.Errorf("canonical row sums not ascending: %v", canon.RowSums())
	}
	if !matrix.IsSortedAscending(canon.ColSums()) {
		t.Errorf("canonical col sums not ascending: %v", canon.ColSums())
	}
}

// MPH and TDH are permutation invariant: reordering machines or task types
// must not change any measure.
func TestMeasuresPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	env := randomEnv(rng, 5, 6)
	permuted, err := env.Subenv([]int{4, 2, 0, 1, 3}, []int{5, 0, 3, 1, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := Characterize(env), Characterize(permuted)
	if !almost(p1.MPH, p2.MPH, 1e-12) || !almost(p1.TDH, p2.TDH, 1e-12) || !almost(p1.TMA, p2.TMA, 1e-6) {
		t.Errorf("measures not permutation invariant:\n%v\n%v", p1, p2)
	}
}

func TestCharacterizeProfileFields(t *testing.T) {
	env := etcmat.MustFromECS([][]float64{{1, 2, 3}, {4, 5, 6}})
	p := Characterize(env)
	if p.Tasks != 2 || p.Machines != 3 {
		t.Errorf("dims = %dx%d", p.Tasks, p.Machines)
	}
	if len(p.MachinePerf) != 3 || len(p.TaskDiff) != 2 {
		t.Errorf("aggregate lengths wrong")
	}
	if p.TMAErr != nil {
		t.Errorf("unexpected TMA error: %v", p.TMAErr)
	}
	if p.SinkhornIterations < 1 {
		t.Errorf("SinkhornIterations = %d", p.SinkhornIterations)
	}
	if s := p.String(); s == "" {
		t.Error("empty Profile string")
	}
}

// The Eq. 10 environment: our TMA evaluates the entrywise Sinkhorn limit
// (the paper leaves TMA for non-scalable matrices as future work; the limit
// of its own Eq. 9 iteration is the natural extension). The limit is a
// permutation pattern, so TMA = 1, with two entries trimmed.
func TestEq10TMAOnEntrywiseLimit(t *testing.T) {
	env := etcmat.MustFromECS([][]float64{
		{0, 1, 0},
		{1, 0, 1},
		{0, 1, 1},
	})
	r, err := TMA(env)
	if err != nil {
		t.Fatal(err)
	}
	if r.Trimmed != 2 {
		t.Errorf("Trimmed = %d, want 2 (entries (1,2) and (2,1))", r.Trimmed)
	}
	if !almost(r.TMA, 1, 1e-6) {
		t.Errorf("TMA = %g, want 1 on the permutation limit", r.TMA)
	}
}

// A square environment whose zero pattern has no positive diagonal cannot be
// standardized at all.
func TestTMANoSupportErrors(t *testing.T) {
	env := etcmat.MustFromECS([][]float64{
		{1, 0, 0},
		{2, 0, 0},
		{3, 4, 5},
	})
	p := Characterize(env)
	if p.TMAErr == nil {
		t.Fatal("expected TMA error for unsupported pattern")
	}
	if !math.IsNaN(p.TMA) {
		t.Errorf("TMA = %g, want NaN", p.TMA)
	}
}

func randomEnv(rng *rand.Rand, t, m int) *etcmat.Env {
	rows := make([][]float64, t)
	for i := range rows {
		rows[i] = make([]float64, m)
		for j := range rows[i] {
			rows[i][j] = 0.1 + rng.Float64()*10
		}
	}
	return etcmat.MustFromECS(rows)
}

// TestCharacterizeConcurrent runs the full profile from many goroutines
// sharing one Env. Under -race it guards the memo wiring in the measure
// layer, and it checks the clone-on-return contract: one caller scribbling on
// its TMA result must not corrupt what the others see.
func TestCharacterizeConcurrent(t *testing.T) {
	env := etcmat.MustFromECS([][]float64{
		{4, 1, 1},
		{1, 4, 1},
		{1, 1, 4},
		{2, 3, 5},
	})
	want := Characterize(env)
	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := Characterize(env)
			if p.MPH != want.MPH || p.TDH != want.TDH || p.TMA != want.TMA {
				t.Errorf("concurrent profile diverged: got %v, want %v", p, want)
			}
			r, err := TMA(env)
			if err != nil {
				t.Error(err)
				return
			}
			// Vandalize the returned copies; later queries must be unaffected.
			r.SingularValues[0] = -1
			r.Standard.Set(0, 0, -1)
		}()
	}
	wg.Wait()
	after, err := TMA(env)
	if err != nil {
		t.Fatal(err)
	}
	if after.SingularValues[0] < 0 || after.Standard.At(0, 0) < 0 {
		t.Fatal("TMA handed out a live reference to the memoized standard form")
	}
	if after.TMA != want.TMA {
		t.Fatalf("TMA drifted after concurrent queries: %v vs %v", after.TMA, want.TMA)
	}
}
