package core

// MutableEnv is the incremental characterizer behind /v1/stream: a live
// environment that absorbs a sequence of mutations — add/drop task, add/drop
// machine, cell edits, weight updates — and produces a fresh measure profile
// after each one without paying a cold characterization.
//
// The mechanism is seed-chaining. Every solve leaves behind the converged
// Sinkhorn scaling diagonals and subdominant singular value of its standard
// form (etcmat.Env.StandardFormSeed); each mutation transports that seed to
// the edited shape — DropRow/DropCol with a Downdater-refreshed σ₂ for
// structural removals (the leave-one-out machinery of whatif.go), AppendRow/
// AppendCol with a targets-derived scaling for additions, a closed-form
// rescale for weight updates, untouched for cell edits — and the next solve
// starts from it with σ₂-tuned over-relaxation. Because the Sinkhorn scaling
// is unique (Theorem 1), the seeded result is the cold result; only the
// round count changes, so incremental profiles match cold recomputation to
// the convergence tolerance (property-tested at 1e-10).
//
// Seeding is best-effort, never load-bearing: mutations accumulate drift
// (the weighted mass each one moved, relative to the matrix total), and once
// the accumulated drift since the last cold solve exceeds the tolerance the
// next profile is computed cold — no seed, drift reset — re-anchoring the
// chain. A non-converged or non-standardizable solve drops the seed the same
// way, so the fallback path is always a plain CharacterizeCtx.

import (
	"context"
	"fmt"
	"math"

	"repro/internal/etcmat"
	"repro/internal/sinkhorn"
)

// DefaultDriftTolerance is the accumulated relative-mass drift past which a
// MutableEnv re-anchors with a cold solve. At 0.5, half the weighted matrix
// mass must turn over before a recompute; percent-level streaming mutations
// run incremental for ~50 steps between anchors.
const DefaultDriftTolerance = 0.5

// StreamSolveTol is the standard-form convergence tolerance a MutableEnv
// solves at — tighter than sinkhorn.DefaultTol because the acceptance
// property compares chained warm-started profiles against cold recomputation
// at 1e-10: at the paper's 1e-8 tolerance the warm and cold iterates stop at
// different points inside the same convergence ball, and their TMAs can
// differ by a few 1e-10. Solving both to 1e-10 pins each within ~1e-11 of
// the unique standard form (Theorem 1), so the comparison isolates exactly
// what the property claims: seeding never changes the result.
const StreamSolveTol = 1e-10

// MutableEnv holds a live environment and its current profile across a
// mutation stream. It owns its Env: each successful mutation releases the
// previous environment's buffers to the matrix pool, and Close releases the
// final one — callers that need state across mutations must copy it out
// (Env().ECS() and friends clone). Not safe for concurrent use; a stream
// session applies mutations one at a time.
type MutableEnv struct {
	env  *etcmat.Env
	prof *Profile
	seed *sinkhorn.WarmStart

	tol   float64
	drift float64

	incremental int
	recomputed  int
}

// NewMutableEnv computes the opening cold profile and returns the session
// state. It takes ownership of env (see MutableEnv). A non-positive tol
// selects DefaultDriftTolerance.
func NewMutableEnv(ctx context.Context, env *etcmat.Env, tol float64) *MutableEnv {
	if tol <= 0 {
		tol = DefaultDriftTolerance
	}
	me := &MutableEnv{env: env, tol: tol}
	env.SetStandardFormTol(StreamSolveTol)
	me.prof = CharacterizeCtx(ctx, env)
	me.seed = env.StandardFormSeed()
	return me
}

// Env returns the live environment. It is only valid until the next
// mutation (which releases it); clone anything that must outlive it.
func (me *MutableEnv) Env() *etcmat.Env { return me.env }

// Profile returns the profile of the current environment.
func (me *MutableEnv) Profile() *Profile { return me.prof }

// Counts returns how many mutations were served from a warm seed and how
// many fell back to a cold solve (the opening solve counts as neither).
func (me *MutableEnv) Counts() (incremental, recomputed int) {
	return me.incremental, me.recomputed
}

// Close releases the environment's buffers. The MutableEnv is dead after.
func (me *MutableEnv) Close() {
	if me.env != nil {
		me.env.ReleaseBuffers()
		me.env = nil
	}
}

// totalMass returns the weighted mass Σᵢⱼ w_t(i)·w_m(j)·ECS(i,j) of the
// live environment — the denominator of every drift contribution.
func (me *MutableEnv) totalMass() float64 {
	var total float64
	for _, s := range me.env.WeightedRowSums() {
		total += s
	}
	return total
}

// step runs the solve for a derived environment, charging delta to the drift
// account and deciding warm-vs-cold. It installs the new environment and
// profile, refreshes the seed from the converged solve, and releases the
// previous environment. Returns the profile and whether the solve was warm.
func (me *MutableEnv) step(ctx context.Context, next *etcmat.Env, seed *sinkhorn.WarmStart, delta float64) (*Profile, bool) {
	if math.IsNaN(delta) || delta < 0 {
		delta = math.Inf(1)
	}
	me.drift += delta
	next.SetStandardFormTol(StreamSolveTol)
	warm := seed.Matches(next.Tasks(), next.Machines()) && me.drift <= me.tol
	if warm {
		next.SetStandardFormSeed(seed)
		me.incremental++
	} else {
		// Clear any hint a clone carried over: a cold anchor must actually
		// be cold, or the drift account would never re-anchor anything.
		next.SetStandardFormSeed(nil)
		me.recomputed++
		me.drift = 0
	}
	prof := CharacterizeCtx(ctx, next)
	old := me.env
	me.env, me.prof = next, prof
	me.seed = next.StandardFormSeed()
	old.ReleaseBuffers()
	return prof, warm
}

// AddTask appends a task type with the given ECS row. The seed gains a row
// scaling that puts the new weighted row on its standard-form target under
// the current column scalings.
func (me *MutableEnv) AddTask(ctx context.Context, name string, speeds []float64) (*Profile, bool, error) {
	next, err := me.env.AddTask(name, speeds)
	if err != nil {
		return nil, false, err
	}
	mw := me.env.MachineWeights()
	var mass float64
	for j, v := range speeds {
		mass += mw[j] * v // the new task arrives with weight 1
	}
	var seed *sinkhorn.WarmStart
	if me.seed != nil {
		var scaled float64
		for j, v := range speeds {
			scaled += mw[j] * v * me.seed.D2[j]
		}
		rowTarget, _ := sinkhorn.StandardTargets(next.Tasks(), next.Machines())
		seed = me.seed.AppendRow(rowTarget / scaled)
	}
	p, warm := me.step(ctx, next, seed, mass/me.totalMass())
	return p, warm, nil
}

// AddMachine appends a machine with the given ECS column; see AddTask.
func (me *MutableEnv) AddMachine(ctx context.Context, name string, speeds []float64) (*Profile, bool, error) {
	next, err := me.env.AddMachine(name, speeds)
	if err != nil {
		return nil, false, err
	}
	tw := me.env.TaskWeights()
	var mass float64
	for i, v := range speeds {
		mass += tw[i] * v
	}
	var seed *sinkhorn.WarmStart
	if me.seed != nil {
		var scaled float64
		for i, v := range speeds {
			scaled += tw[i] * v * me.seed.D1[i]
		}
		_, colTarget := sinkhorn.StandardTargets(next.Tasks(), next.Machines())
		seed = me.seed.AppendCol(colTarget / scaled)
	}
	p, warm := me.step(ctx, next, seed, mass/me.totalMass())
	return p, warm, nil
}

// DropTask removes task type i. The seed drops the row's scaling and, at
// fleet scale, refreshes σ₂ through the spectral downdating path (the same
// seedRefresher the leave-one-out sweep uses).
func (me *MutableEnv) DropTask(ctx context.Context, i int) (*Profile, bool, error) {
	if i < 0 || i >= me.env.Tasks() {
		return nil, false, fmt.Errorf("%w: task index %d out of range [0,%d)", etcmat.ErrInvalid, i, me.env.Tasks())
	}
	next, err := me.env.RemoveTask(i)
	if err != nil {
		return nil, false, err
	}
	rows := me.env.WeightedRowSums()
	var total float64
	for _, s := range rows {
		total += s
	}
	seed := newSeedRefresher(me.env, me.seed).dropRow(me.seed, i)
	p, warm := me.step(ctx, next, seed, rows[i]/total)
	return p, warm, nil
}

// DropMachine removes machine j; see DropTask.
func (me *MutableEnv) DropMachine(ctx context.Context, j int) (*Profile, bool, error) {
	if j < 0 || j >= me.env.Machines() {
		return nil, false, fmt.Errorf("%w: machine index %d out of range [0,%d)", etcmat.ErrInvalid, j, me.env.Machines())
	}
	next, err := me.env.RemoveMachine(j)
	if err != nil {
		return nil, false, err
	}
	cols := me.env.WeightedColSums()
	var total float64
	for _, s := range cols {
		total += s
	}
	seed := newSeedRefresher(me.env, me.seed).dropCol(me.seed, j)
	p, warm := me.step(ctx, next, seed, cols[j]/total)
	return p, warm, nil
}

// SetCell sets ECS cell (i, j) to v. The seed passes through unchanged — a
// single-cell edit is the canonical warm-start perturbation.
func (me *MutableEnv) SetCell(ctx context.Context, i, j int, v float64) (*Profile, bool, error) {
	next, err := me.env.WithECSCell(i, j, v)
	if err != nil {
		return nil, false, err
	}
	tw, mw := me.env.TaskWeights(), me.env.MachineWeights()
	delta := tw[i] * mw[j] * math.Abs(v-me.env.ECSAt(i, j)) / me.totalMass()
	p, warm := me.step(ctx, next, me.seed, delta)
	return p, warm, nil
}

// SetWeights replaces the weighting vectors (nil keeps the existing one, as
// in Env.WithWeights). A weight change rescales whole lines of the weighted
// matrix, so the seed compensates in closed form: D1'ᵢ = D1ᵢ·wᵢ/w'ᵢ keeps
// every row sum on target, and likewise for columns.
func (me *MutableEnv) SetWeights(ctx context.Context, taskW, machineW []float64) (*Profile, bool, error) {
	next, err := me.env.WithWeights(taskW, machineW)
	if err != nil {
		return nil, false, err
	}
	oldTW, oldMW := me.env.TaskWeights(), me.env.MachineWeights()
	rows := me.env.WeightedRowSums()
	cols := me.env.WeightedColSums()
	var total, moved float64
	for _, s := range rows {
		total += s
	}
	if taskW != nil {
		for i, w := range taskW {
			moved += math.Abs(w-oldTW[i]) * rows[i] / oldTW[i]
		}
	}
	if machineW != nil {
		for j, w := range machineW {
			moved += math.Abs(w-oldMW[j]) * cols[j] / oldMW[j]
		}
	}
	var seed *sinkhorn.WarmStart
	if me.seed != nil {
		d1 := append([]float64(nil), me.seed.D1...)
		d2 := append([]float64(nil), me.seed.D2...)
		if taskW != nil {
			for i := range d1 {
				d1[i] *= oldTW[i] / taskW[i]
			}
		}
		if machineW != nil {
			for j := range d2 {
				d2[j] *= oldMW[j] / machineW[j]
			}
		}
		seed = &sinkhorn.WarmStart{D1: d1, D2: d2, Sigma2: me.seed.Sigma2}
	}
	p, warm := me.step(ctx, next, seed, moved/total)
	return p, warm, nil
}
