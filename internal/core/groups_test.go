package core

import (
	"math/rand"
	"testing"

	"repro/internal/etcmat"
)

// blockEnv builds an environment with g specialization blocks: task i is
// fast (speed hi) on the machines of block i%g and slow (speed lo)
// elsewhere.
func blockEnv(tasks, machines, g int, hi, lo float64) *etcmat.Env {
	rows := make([][]float64, tasks)
	for i := range rows {
		rows[i] = make([]float64, machines)
		for j := range rows[i] {
			if j%g == i%g {
				rows[i][j] = hi
			} else {
				rows[i][j] = lo
			}
		}
	}
	return etcmat.MustFromECS(rows)
}

func sameGrouping(t *testing.T, got []int, want func(a, b int) bool) {
	t.Helper()
	for a := 0; a < len(got); a++ {
		for b := a + 1; b < len(got); b++ {
			if want(a, b) != (got[a] == got[b]) {
				t.Fatalf("grouping wrong: elements %d and %d (groups %d, %d), want together=%v",
					a, b, got[a], got[b], want(a, b))
			}
		}
	}
}

func TestFindAffinityGroupsTwoBlocks(t *testing.T) {
	env := blockEnv(10, 6, 2, 10, 0.5)
	g, err := FindAffinityGroups(env, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	sameGrouping(t, g.MachineGroup, func(a, b int) bool { return a%2 == b%2 })
	sameGrouping(t, g.TaskGroup, func(a, b int) bool { return a%2 == b%2 })
	// Tasks must share the group id of their fast machines.
	for i, tg := range g.TaskGroup {
		if tg != g.MachineGroup[i%2] {
			t.Fatalf("task %d in group %d, its fast machines in group %d", i, tg, g.MachineGroup[i%2])
		}
	}
}

func TestFindAffinityGroupsThreeBlocks(t *testing.T) {
	env := blockEnv(12, 9, 3, 8, 0.25)
	g, err := FindAffinityGroups(env, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	sameGrouping(t, g.MachineGroup, func(a, b int) bool { return a%3 == b%3 })
	sameGrouping(t, g.TaskGroup, func(a, b int) bool { return a%3 == b%3 })
}

func TestFindAffinityGroupsKOne(t *testing.T) {
	env := blockEnv(4, 4, 2, 5, 1)
	g, err := FindAffinityGroups(env, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range append(g.TaskGroup, g.MachineGroup...) {
		if v != 0 {
			t.Fatalf("k=1 must put everything in group 0: %v %v", g.TaskGroup, g.MachineGroup)
		}
	}
}

func TestFindAffinityGroupsValidation(t *testing.T) {
	env := blockEnv(4, 3, 2, 5, 1)
	if _, err := FindAffinityGroups(env, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := FindAffinityGroups(env, 4, 1); err == nil {
		t.Error("k > min(T,M) accepted")
	}
}

func TestFindAffinityGroupsDeterministic(t *testing.T) {
	env := blockEnv(10, 6, 2, 10, 0.5)
	a, err := FindAffinityGroups(env, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FindAffinityGroups(env, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.MachineGroup {
		if a.MachineGroup[j] != b.MachineGroup[j] {
			t.Fatal("same seed, different machine grouping")
		}
	}
}

// A rank-1 (no-affinity) environment has no real group structure; the call
// must still succeed and return *some* partition without panicking.
func TestFindAffinityGroupsNoStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(190))
	rows := make([][]float64, 6)
	for i := range rows {
		rows[i] = make([]float64, 6)
		base := 0.5 + rng.Float64()
		for j := range rows[i] {
			rows[i][j] = base * (0.5 + rng.Float64())
		}
	}
	env := etcmat.MustFromECS(rows)
	if _, err := FindAffinityGroups(env, 2, 1); err != nil {
		t.Fatalf("no-structure environment errored: %v", err)
	}
}
