package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/etcmat"
)

// For a positive 2x2 ECS matrix [[a, b], [c, d]] the standard form is the
// doubly stochastic [[p, 1-p], [1-p, p]] (up to the permutation), diagonal
// scaling preserves the cross ratio (ad)/(bc) = p²/(1-p)², and the singular
// values of the standard form are 1 and |2p-1|. Hence the closed form
//
//	TMA = |√(ad) − √(bc)| / (√(ad) + √(bc)).
//
// This is an analytic end-to-end check of the whole pipeline
// (standardization + SVD + aggregation) against exact mathematics.
func TestTMAAnalytic2x2(t *testing.T) {
	rng := rand.New(rand.NewSource(140))
	for trial := 0; trial < 200; trial++ {
		a := 0.05 + rng.Float64()*20
		b := 0.05 + rng.Float64()*20
		c := 0.05 + rng.Float64()*20
		d := 0.05 + rng.Float64()*20
		env := etcmat.MustFromECS([][]float64{{a, b}, {c, d}})
		r, err := TMA(env)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sad, sbc := math.Sqrt(a*d), math.Sqrt(b*c)
		want := math.Abs(sad-sbc) / (sad + sbc)
		if math.Abs(r.TMA-want) > 1e-6 {
			t.Fatalf("trial %d: TMA = %.9f, analytic = %.9f for [[%g %g],[%g %g]]",
				trial, r.TMA, want, a, b, c, d)
		}
	}
}

// The 2x2 closed form also fixes the standard matrix itself:
// p = sqrt(ad) / (sqrt(ad) + sqrt(bc)) on the dominant diagonal.
func TestStandardForm2x2Analytic(t *testing.T) {
	env := etcmat.MustFromECS([][]float64{{8, 2}, {1, 4}})
	r, err := TMA(env)
	if err != nil {
		t.Fatal(err)
	}
	sad, sbc := math.Sqrt(8.0*4.0), math.Sqrt(2.0*1.0)
	p := sad / (sad + sbc)
	if math.Abs(r.Standard.At(0, 0)-p) > 1e-7 {
		t.Errorf("standard (0,0) = %.9f, want %.9f", r.Standard.At(0, 0), p)
	}
	if math.Abs(r.Standard.At(0, 1)-(1-p)) > 1e-7 {
		t.Errorf("standard (0,1) = %.9f, want %.9f", r.Standard.At(0, 1), 1-p)
	}
}

// Characterize on badly scaled but legal input (entries spanning 12 orders
// of magnitude) must stay finite and in range — numerical hardening.
func TestCharacterizeExtremeScales(t *testing.T) {
	env := etcmat.MustFromECS([][]float64{
		{1e-6, 3e5, 2},
		{4e-4, 1e6, 7e-2},
		{9e-5, 6e5, 3e-1},
	})
	p := Characterize(env)
	if p.TMAErr != nil {
		t.Fatalf("TMA failed on wide dynamic range: %v", p.TMAErr)
	}
	for name, v := range map[string]float64{"MPH": p.MPH, "TDH": p.TDH, "TMA": p.TMA} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s is not finite: %g", name, v)
		}
	}
	if p.TMA < 0 || p.TMA > 1 || p.MPH <= 0 || p.MPH > 1 || p.TDH <= 0 || p.TDH > 1 {
		t.Errorf("measures out of range: %+v", p)
	}
}

// Near-duplicate singular values (an almost-symmetric specialized
// environment) must not destabilize TMA.
func TestTMANearDegenerateSpectrum(t *testing.T) {
	env := etcmat.MustFromECS([][]float64{
		{1, 1e-9},
		{1e-9, 1},
	})
	r, err := TMA(env)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.TMA-1) > 1e-6 {
		t.Errorf("TMA = %.9f, want ~1 for near-permutation", r.TMA)
	}
}
