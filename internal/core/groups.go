package core

import (
	"fmt"
	"math/rand"

	"repro/internal/etcmat"
	"repro/internal/linalg"
	"repro/internal/stats"
)

// AffinityGroups identifies the task-set / machine-set specialization
// structure that TMA quantifies: which groups of machines are "better suited
// to execute different sets of task types" (paper Sec. II-E).
//
// Method: take the standard-form ECS matrix (where σ₁ = 1 and the leading
// singular vectors are the uninformative uniform directions — Theorem 2),
// embed each machine by its components along the next k−1 right singular
// vectors scaled by their singular values, and likewise each task type by
// the left singular vectors; then k-means the embeddings. For a perfectly
// block-specialized environment the embeddings are k point clusters and the
// recovery is exact.
type AffinityGroups struct {
	// TaskGroup[i] and MachineGroup[j] are group ids in [0, K).
	TaskGroup    []int
	MachineGroup []int
	K            int
}

// FindAffinityGroups clusters the environment into k affinity groups.
// k must be between 1 and min(T, M). The seed makes runs reproducible.
func FindAffinityGroups(env *etcmat.Env, k int, seed int64) (*AffinityGroups, error) {
	t, m := env.Tasks(), env.Machines()
	minTM := t
	if m < minTM {
		minTM = m
	}
	if k < 1 || k > minTM {
		return nil, fmt.Errorf("core: affinity group count %d out of [1, %d]", k, minTM)
	}
	if k == 1 {
		return &AffinityGroups{TaskGroup: make([]int, t), MachineGroup: make([]int, m), K: 1}, nil
	}
	res, _, err := env.StandardForm()
	if err != nil {
		return nil, fmt.Errorf("core: affinity groups need a standardizable environment: %w", err)
	}
	f, err := linalg.SVDGolubReinsch(res.Scaled)
	if err != nil {
		f = linalg.SVDJacobi(res.Scaled)
	}
	// Dimensions 1..k-1 (skipping the uniform σ₁ direction).
	dims := k - 1
	machPoints := make([][]float64, m)
	for j := 0; j < m; j++ {
		p := make([]float64, dims)
		for d := 0; d < dims; d++ {
			p[d] = f.S[d+1] * f.V.At(j, d+1)
		}
		machPoints[j] = p
	}
	taskPoints := make([][]float64, t)
	for i := 0; i < t; i++ {
		p := make([]float64, dims)
		for d := 0; d < dims; d++ {
			p[d] = f.S[d+1] * f.U.At(i, d+1)
		}
		taskPoints[i] = p
	}
	rng := rand.New(rand.NewSource(seed))
	machAssign, centroids, err := stats.KMeans(machPoints, k, rng, 8)
	if err != nil {
		return nil, err
	}
	// Assign tasks to the *machine* centroids so group ids are shared: a
	// task belongs with the machines it loads on. Task and machine
	// embeddings live in the same singular-vector coordinate system up to
	// the sign/scale of each component, so nearest-centroid matching is
	// meaningful after normalizing both clouds component-wise.
	taskAssign := make([]int, t)
	for i, p := range taskPoints {
		best, bestD := 0, -1.0
		for c := range centroids {
			d := dot(p, centroids[c])
			if bestD == -1 || d > bestD {
				best, bestD = c, d
			}
		}
		taskAssign[i] = best
	}
	return &AffinityGroups{TaskGroup: taskAssign, MachineGroup: machAssign, K: k}, nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
