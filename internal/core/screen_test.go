package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/etcmat"
)

func TestLeaveOneOutSpectralShape(t *testing.T) {
	rng := rand.New(rand.NewSource(170))
	env := randomEnv(rng, 6, 5)
	base, deltas, err := LeaveOneOutSpectral(env)
	if err != nil {
		t.Fatal(err)
	}
	p := Characterize(env)
	if p.TMAErr != nil {
		t.Fatal(p.TMAErr)
	}
	if math.Abs(base-p.TMA) > 1e-12 {
		t.Errorf("screened baseline %g != exact TMA %g", base, p.TMA)
	}
	if len(deltas) != 6+5 {
		t.Fatalf("got %d deltas, want 11", len(deltas))
	}
	machines, tasks := 0, 0
	for _, d := range deltas {
		if d.Err != nil {
			t.Errorf("unexpected screen error for %s %s: %v", d.Kind, d.Name, d.Err)
			continue
		}
		switch d.Kind {
		case "machine":
			machines++
		case "task":
			tasks++
		default:
			t.Errorf("unknown kind %q", d.Kind)
		}
		if d.TMA < 0 || d.TMA > 1 {
			t.Errorf("%s %s: screened TMA %g outside [0,1]", d.Kind, d.Name, d.TMA)
		}
		if math.Abs(d.DTMA-(d.TMA-base)) > 1e-15 {
			t.Errorf("%s %s: DTMA inconsistent", d.Kind, d.Name)
		}
	}
	if machines != 5 || tasks != 6 {
		t.Errorf("kinds = %d machines, %d tasks", machines, tasks)
	}
}

// A consistent (rank-1) environment plus one inconsistent machine: the
// screening pass must agree with the exact leave-one-out table that removing
// the inconsistent machine is the dominant TMA reduction — the workflow the
// screen-then-verify design is specified for.
func TestLeaveOneOutSpectralFlagsInconsistentMachine(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	const tasks, machines = 8, 6
	rows := make([][]float64, tasks)
	for i := range rows {
		rows[i] = make([]float64, machines)
		base := 1 + rng.Float64()*4
		for j := 0; j < machines-1; j++ {
			rows[i][j] = base * float64(j+1) // rank-1 block: perfectly consistent
		}
		rows[i][machines-1] = 0.5 + rng.Float64()*8 // the odd machine
	}
	env := etcmat.MustFromECS(rows)

	baseTMA, screened, err := LeaveOneOutSpectral(env)
	if err != nil {
		t.Fatal(err)
	}
	bestIdx, bestDTMA := -1, math.Inf(1)
	for _, d := range screened {
		if d.Kind == "machine" && d.DTMA < bestDTMA {
			bestIdx, bestDTMA = d.Index, d.DTMA
		}
	}
	if bestIdx != machines-1 {
		t.Errorf("screen ranks machine %d as the top removal, want %d (deltas %+v)", bestIdx, machines-1, screened)
	}
	if bestDTMA >= 0 {
		t.Errorf("removing the inconsistent machine must lower screened TMA (baseline %g, delta %+g)", baseTMA, bestDTMA)
	}

	// The exact table must agree on the winner.
	_, exact := LeaveOneOut(env)
	exactIdx, exactDTMA := -1, math.Inf(1)
	for _, d := range exact {
		if d.Kind == "machine" && d.Err == nil && d.DTMA < exactDTMA {
			exactIdx, exactDTMA = d.Index, d.DTMA
		}
	}
	if exactIdx != bestIdx {
		t.Errorf("screened winner %d disagrees with exact winner %d", bestIdx, exactIdx)
	}
}

func TestLeaveOneOutSpectralDegenerateEdits(t *testing.T) {
	env := etcmat.MustFromECS([][]float64{{1}, {2}, {3}})
	_, deltas, err := LeaveOneOutSpectral(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deltas {
		if d.Kind == "machine" && d.Err == nil {
			t.Error("removing the only machine must report an error delta")
		}
		if d.Kind == "task" && d.Err != nil {
			t.Errorf("task removal from a 3x1 environment should screen fine: %v", d.Err)
		}
	}
}

func TestTMAFromScreenedSpectrumEdges(t *testing.T) {
	if got := tmaFromScreenedSpectrum(nil); got != 0 {
		t.Errorf("empty spectrum: %g", got)
	}
	if got := tmaFromScreenedSpectrum([]float64{0.9}); got != 0 {
		t.Errorf("single value: %g", got)
	}
	if got := tmaFromScreenedSpectrum([]float64{0, 0}); got != 0 {
		t.Errorf("zero leading value: %g", got)
	}
	// Invariance to global scaling: the screened TMA reads σ/σ₁.
	a := tmaFromScreenedSpectrum([]float64{0.98, 0.5, 0.25})
	b := tmaFromScreenedSpectrum([]float64{0.49, 0.25, 0.125})
	if math.Abs(a-b) > 1e-15 {
		t.Errorf("screened TMA not scale invariant: %g vs %g", a, b)
	}
	want := (0.5/0.98 + 0.25/0.98) / 2
	if math.Abs(a-want) > 1e-15 {
		t.Errorf("screened TMA = %g, want %g", a, want)
	}
}

// White-box check of the leave-one-out seed refresher above its size
// threshold: the refreshed σ₂ must be a usable over-relaxation hint — inside
// (0, 1) and close to the true subdominant value of the re-standardized
// edited environment. The tolerance is loose by design: the refresher's
// value skips the rebalance, an O(1/k) perturbation, and WarmStart.Sigma2
// only steers a relaxation factor whose optimum is flat.
func TestSeedRefresherTracksEditedSigma2(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	rng := rand.New(rand.NewSource(172))
	env := randomEnv(rng, seedRefreshMin+6, seedRefreshMin+2)
	if _, _, err := env.StandardForm(); err != nil {
		t.Fatal(err)
	}
	seed := env.StandardFormSeed()
	if seed == nil {
		t.Fatal("no warm-start seed after StandardForm")
	}
	refresh := newSeedRefresher(env, seed)
	if refresh == nil {
		t.Fatal("refresher must engage at min dim >= seedRefreshMin")
	}
	for _, j := range []int{0, seedRefreshMin / 2} {
		s := refresh.dropCol(seed, j)
		if s == nil {
			t.Fatalf("dropCol(%d) seed lost", j)
		}
		if s.Sigma2 <= 0 || s.Sigma2 >= 1 {
			t.Fatalf("dropCol(%d): refreshed σ₂ = %g outside (0,1)", j, s.Sigma2)
		}
		edited, err := env.RemoveMachine(j)
		if err != nil {
			t.Fatal(err)
		}
		_, sv, err := edited.StandardForm()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s.Sigma2-sv[1]) > 0.1*sv[1] {
			t.Errorf("dropCol(%d): refreshed σ₂ %g vs re-standardized %g (>10%% off)", j, s.Sigma2, sv[1])
		}
	}
}
