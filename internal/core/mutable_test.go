package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/etcmat"
)

// applyRandomMutation applies one randomly chosen mutation to me, returning
// its name (for failure messages) and whether it was served incrementally.
// Mutations that would invalidate the environment (dropping below 2x2) are
// re-rolled into cell edits.
func applyRandomMutation(t *testing.T, rng *rand.Rand, me *MutableEnv) (string, bool) {
	t.Helper()
	ctx := context.Background()
	env := me.Env()
	tasks, machines := env.Tasks(), env.Machines()
	op := rng.Intn(7)
	if (op == 2 && tasks <= 2) || (op == 3 && machines <= 2) {
		op = 4
	}
	switch op {
	case 0: // add task
		speeds := make([]float64, machines)
		for j := range speeds {
			speeds[j] = 0.1 + rng.Float64()*10
		}
		_, warm, err := me.AddTask(ctx, "tnew", speeds)
		if err != nil {
			t.Fatalf("add task: %v", err)
		}
		return "add_task", warm
	case 1: // add machine
		speeds := make([]float64, tasks)
		for i := range speeds {
			speeds[i] = 0.1 + rng.Float64()*10
		}
		_, warm, err := me.AddMachine(ctx, "mnew", speeds)
		if err != nil {
			t.Fatalf("add machine: %v", err)
		}
		return "add_machine", warm
	case 2: // drop task
		_, warm, err := me.DropTask(ctx, rng.Intn(tasks))
		if err != nil {
			t.Fatalf("drop task: %v", err)
		}
		return "drop_task", warm
	case 3: // drop machine
		_, warm, err := me.DropMachine(ctx, rng.Intn(machines))
		if err != nil {
			t.Fatalf("drop machine: %v", err)
		}
		return "drop_machine", warm
	case 4: // cell edit
		_, warm, err := me.SetCell(ctx, rng.Intn(tasks), rng.Intn(machines), 0.1+rng.Float64()*10)
		if err != nil {
			t.Fatalf("set cell: %v", err)
		}
		return "set_cell", warm
	case 5: // task weights
		w := make([]float64, tasks)
		for i := range w {
			w[i] = 0.5 + rng.Float64()*2
		}
		_, warm, err := me.SetWeights(ctx, w, nil)
		if err != nil {
			t.Fatalf("task weights: %v", err)
		}
		return "task_weights", warm
	default: // machine weights
		w := make([]float64, machines)
		for j := range w {
			w[j] = 0.5 + rng.Float64()*2
		}
		_, warm, err := me.SetWeights(ctx, nil, w)
		if err != nil {
			t.Fatalf("machine weights: %v", err)
		}
		return "machine_weights", warm
	}
}

// coldProfileOf rebuilds the mutable env's current state as a fresh
// environment and characterizes it cold — the reference every incremental
// profile must match.
func coldProfileOf(t *testing.T, me *MutableEnv) *Profile {
	t.Helper()
	fresh, err := etcmat.NewFromECS(me.Env().ECS())
	if err != nil {
		t.Fatalf("rebuilding env: %v", err)
	}
	fresh, err = fresh.WithWeights(me.Env().TaskWeights(), me.Env().MachineWeights())
	if err != nil {
		t.Fatalf("rebuilding weights: %v", err)
	}
	// Solve at the stream tolerance so the comparison isolates seeding: at
	// sinkhorn.DefaultTol the cold iterate itself sits up to a few 1e-10
	// from the unique standard form, drowning the property being tested.
	fresh.SetStandardFormTol(StreamSolveTol)
	return Characterize(fresh)
}

// TestMutableEnvMatchesColdRecompute is the acceptance property: across
// random mutation sequences, every incrementally computed profile agrees
// with a cold characterization of the same environment to 1e-10 (Theorem 1:
// the seeded solve converges to the same unique standard form).
func TestMutableEnvMatchesColdRecompute(t *testing.T) {
	for _, seed := range []int64{901, 902, 903} {
		rng := rand.New(rand.NewSource(seed))
		me := NewMutableEnv(context.Background(), randomEnv(rng, 9, 6), 0)
		defer me.Close()
		for step := 0; step < 30; step++ {
			name, _ := applyRandomMutation(t, rng, me)
			got, want := me.Profile(), coldProfileOf(t, me)
			if got.Tasks != want.Tasks || got.Machines != want.Machines {
				t.Fatalf("seed %d step %d (%s): shape %dx%d, want %dx%d",
					seed, step, name, got.Tasks, got.Machines, want.Tasks, want.Machines)
			}
			for _, c := range []struct {
				field     string
				got, want float64
			}{
				{"MPH", got.MPH, want.MPH},
				{"TDH", got.TDH, want.TDH},
				{"TMA", got.TMA, want.TMA},
				{"RatioR", got.RatioR, want.RatioR},
				{"GeoMeanG", got.GeoMeanG, want.GeoMeanG},
				{"COV", got.COV, want.COV},
			} {
				if math.Abs(c.got-c.want) > 1e-10 {
					t.Errorf("seed %d step %d (%s): %s = %.15g, cold %.15g (Δ %.3g)",
						seed, step, name, c.field, c.got, c.want, math.Abs(c.got-c.want))
				}
			}
			if (got.TMAErr == nil) != (want.TMAErr == nil) {
				t.Errorf("seed %d step %d (%s): TMAErr mismatch: %v vs %v",
					seed, step, name, got.TMAErr, want.TMAErr)
			}
		}
		inc, rec := me.Counts()
		if inc+rec != 30 {
			t.Errorf("seed %d: counts %d+%d != 30 mutations", seed, inc, rec)
		}
		if inc == 0 {
			t.Errorf("seed %d: no mutation was served incrementally", seed)
		}
	}
}

// TestMutableEnvDriftFallback pins the re-anchoring contract: with an
// impossibly tight tolerance every mutation recomputes cold, and with a
// huge one percent-level edits stay incremental indefinitely.
func TestMutableEnvDriftFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(910))
	ctx := context.Background()

	tight := NewMutableEnv(ctx, randomEnv(rng, 6, 5), math.SmallestNonzeroFloat64)
	defer tight.Close()
	for k := 0; k < 5; k++ {
		if _, warm, err := tight.SetCell(ctx, k%6, k%5, 0.1+rng.Float64()); err != nil {
			t.Fatal(err)
		} else if warm {
			t.Errorf("mutation %d ran warm past a zero drift tolerance", k)
		}
	}
	if inc, rec := tight.Counts(); inc != 0 || rec != 5 {
		t.Errorf("tight tolerance counts = %d/%d, want 0/5", inc, rec)
	}

	loose := NewMutableEnv(ctx, randomEnv(rng, 6, 5), 1e9)
	defer loose.Close()
	for k := 0; k < 5; k++ {
		old := loose.Env().ECSAt(k%6, k%5)
		if _, warm, err := loose.SetCell(ctx, k%6, k%5, old*1.01); err != nil {
			t.Fatal(err)
		} else if !warm {
			t.Errorf("percent-level mutation %d fell back to cold under a huge tolerance", k)
		}
	}
	if inc, rec := loose.Counts(); inc != 5 || rec != 0 {
		t.Errorf("loose tolerance counts = %d/%d, want 5/0", inc, rec)
	}
}

// TestMutableEnvRejectsInvalid pins the error contract: a rejected mutation
// leaves the environment, profile and counters untouched.
func TestMutableEnvRejectsInvalid(t *testing.T) {
	rng := rand.New(rand.NewSource(911))
	ctx := context.Background()
	me := NewMutableEnv(ctx, randomEnv(rng, 4, 3), 0)
	defer me.Close()
	before := me.Profile()
	for name, call := range map[string]func() error{
		"short add row":    func() error { _, _, err := me.AddTask(ctx, "x", []float64{1}); return err },
		"bad drop index":   func() error { _, _, err := me.DropMachine(ctx, 99); return err },
		"negative cell":    func() error { _, _, err := me.SetCell(ctx, 0, 0, -1); return err },
		"NaN cell":         func() error { _, _, err := me.SetCell(ctx, 0, 0, math.NaN()); return err },
		"zero weight":      func() error { _, _, err := me.SetWeights(ctx, []float64{0, 1, 1, 1}, nil); return err },
		"short weight vec": func() error { _, _, err := me.SetWeights(ctx, nil, []float64{1}); return err },
	} {
		if err := call(); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
	if me.Profile() != before {
		t.Error("a rejected mutation replaced the profile")
	}
	if inc, rec := me.Counts(); inc != 0 || rec != 0 {
		t.Errorf("rejected mutations moved the counters: %d/%d", inc, rec)
	}
}
