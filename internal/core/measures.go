// Package core implements the reproduced paper's primary contribution: the
// three independent heterogeneity measures of a heterogeneous computing
// environment —
//
//   - MPH, machine performance homogeneity (paper Eq. 3, weighted Eq. 4),
//   - TDH, task difficulty homogeneity (the measure this paper introduces,
//     Eqs. 6-7), and
//   - TMA, task-machine affinity (Eq. 5, simplified to Eq. 8 on the standard
//     form matrix),
//
// plus the comparison measures the paper evaluates MPH against in Figure 2
// (the min/max ratio R, the geometric mean of adjacent ratios G, and the
// coefficient of variation COV), the canonical form, and a one-call
// Characterize that produces the full heterogeneity profile with
// standardization diagnostics.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/etcmat"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/stats"
)

// MachinePerformances returns MP_j for every machine: the weighted column
// sums of the ECS matrix (paper Eq. 4). Higher is a faster machine for this
// task mix. The sums come from the Env's memo, so repeated measure queries
// on one environment do not rebuild the weighted matrix.
func MachinePerformances(env *etcmat.Env) []float64 {
	return env.WeightedColSums()
}

// TaskDifficulties returns TD_i for every task type: the weighted row sums
// of the ECS matrix (paper Eq. 6). Task types with *higher* row sums are
// *less* difficult.
func TaskDifficulties(env *etcmat.Env) []float64 {
	return env.WeightedRowSums()
}

// homogeneityOfSums computes the paper's homogeneity aggregate: sort the
// values ascending and average the ratio of each value to its successor
// (Eqs. 3 and 7). A single value is perfectly homogeneous.
func homogeneityOfSums(vals []float64) float64 {
	if len(vals) <= 1 {
		return 1
	}
	s := matrix.SortedAscending(vals)
	sum := 0.0
	for j := 0; j+1 < len(s); j++ {
		sum += s[j] / s[j+1]
	}
	return sum / float64(len(s)-1)
}

// MPH returns the machine performance homogeneity (paper Eq. 3), a value in
// (0, 1]; 1 means all machines perform identically on this task mix.
func MPH(env *etcmat.Env) float64 {
	return homogeneityOfSums(MachinePerformances(env))
}

// TDH returns the task difficulty homogeneity (paper Eq. 7), a value in
// (0, 1]; 1 means all task types are equally difficult for this machine set.
func TDH(env *etcmat.Env) float64 {
	return homogeneityOfSums(TaskDifficulties(env))
}

// RatioR is the comparison homogeneity measure R of Figure 2: the ratio of
// the lowest machine performance to the highest.
func RatioR(env *etcmat.Env) float64 {
	mp := MachinePerformances(env)
	s := matrix.SortedAscending(mp)
	return s[0] / s[len(s)-1]
}

// GeoMeanG is the comparison measure G of Figure 2: the geometric mean of
// the adjacent performance ratios, which collapses to
// (min/max)^(1/(M-1)) and therefore ignores the intermediate machines —
// the paper's argument for preferring MPH.
func GeoMeanG(env *etcmat.Env) float64 {
	mp := MachinePerformances(env)
	if len(mp) <= 1 {
		return 1
	}
	s := matrix.SortedAscending(mp)
	ratios := make([]float64, 0, len(s)-1)
	for j := 0; j+1 < len(s); j++ {
		ratios = append(ratios, s[j]/s[j+1])
	}
	return stats.GeoMean(ratios)
}

// COV is the comparison heterogeneity measure of Figure 2: the coefficient
// of variation of the machine performances (population standard deviation
// over mean — the convention that reproduces the paper's Figure 2 numbers).
func COV(env *etcmat.Env) float64 {
	return stats.COV(MachinePerformances(env))
}

// TMAResult carries the affinity value along with the standardization
// diagnostics the paper reports (convergence and iteration counts, Sec. V).
type TMAResult struct {
	// TMA is the task-machine affinity in [0, 1] (paper Eq. 8).
	TMA float64
	// SingularValues are the singular values of the standard-form matrix,
	// descending; σ₁ = 1 up to the balancing tolerance (Theorem 2).
	SingularValues []float64
	// Standard is the standard-form ECS matrix the values were computed from.
	Standard *matrix.Dense
	// Iterations is the number of column+row normalization rounds used.
	Iterations int
	// Trimmed counts entries zeroed because they lie on no positive diagonal
	// (square matrices with zeros only); nonzero means the environment is
	// not exactly scalable and the entrywise Sinkhorn limit was used, which
	// is what the paper's Eq. 9 iteration converges to (Fig. 4 A/B/D).
	Trimmed int
}

// ErrNotStandardizable is returned by TMA when the ECS matrix cannot be put
// in standard form (Section VI of the paper — e.g. the decomposable Eq. 10
// pattern). Evaluating TMA for such matrices is listed as future work in the
// paper.
var ErrNotStandardizable = errors.New("core: ECS matrix cannot be put in standard form (see paper Sec. VI)")

// TMA computes the task-machine affinity of the environment (paper Eqs. 5/8):
// the mean of the non-maximum singular values of the standard-form weighted
// ECS matrix. 0 means no affinity (all machines rank task types identically,
// rank-1 ECS); 1 means maximal affinity (disjoint task-machine specialization).
func TMA(env *etcmat.Env) (*TMAResult, error) {
	return TMACtx(context.Background(), env)
}

// TMACtx is TMA with stage tracing: when ctx carries an obs.Trace and the
// environment's standard form is not yet memoized, the pipeline emits
// "standardize", "gram" and "eigensolve" spans.
func TMACtx(ctx context.Context, env *etcmat.Env) (*TMAResult, error) {
	minTM := env.Tasks()
	if env.Machines() < minTM {
		minTM = env.Machines()
	}
	if minTM == 1 {
		// A single task type or machine admits no affinity structure; the
		// standard form is rank one by construction.
		return &TMAResult{TMA: 0, SingularValues: []float64{1}, Standard: nil}, nil
	}
	// The standardization and SVD come from the Env's memo: the first query
	// pays for them, every later TMA/Characterize call on the same Env is a
	// cheap copy. The memoized matrices are shared, so clone before handing
	// them to the caller.
	res, sv, err := env.StandardFormCtx(ctx)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotStandardizable, err)
	}
	sum := 0.0
	for _, s := range sv[1:] {
		sum += s
	}
	tma := sum / float64(minTM-1)
	// Guard against tolerance-level overshoot.
	if tma < 0 {
		tma = 0
	}
	if tma > 1 {
		tma = 1
	}
	return &TMAResult{
		TMA:            tma,
		SingularValues: matrix.VecClone(sv),
		Standard:       res.Scaled.Clone(),
		Iterations:     res.Iterations,
		Trimmed:        res.Trimmed,
	}, nil
}

// CanonicalForm returns the environment's weighted ECS matrix with machines
// (columns) sorted ascending by performance and task types (rows) sorted
// ascending by difficulty row sum — the paper's canonical ECS matrix
// (Sec. III-B). The returned permutations map canonical index -> original
// index.
func CanonicalForm(env *etcmat.Env) (canonical *matrix.Dense, taskPerm, machinePerm []int) {
	w := env.WeightedECS()
	taskPerm = matrix.AscendingPerm(w.RowSums())
	machinePerm = matrix.AscendingPerm(w.ColSums())
	return w.PermuteRows(taskPerm).PermuteCols(machinePerm), taskPerm, machinePerm
}

// Profile is a complete heterogeneity characterization of an environment.
type Profile struct {
	Tasks, Machines int
	// The paper's three independent measures.
	MPH, TDH, TMA float64
	// Comparison measures (Fig. 2).
	RatioR, GeoMeanG, COV float64
	// Raw aggregates.
	MachinePerf []float64
	TaskDiff    []float64
	// Standardization diagnostics.
	SinkhornIterations int
	Trimmed            int
	// TMAErr is non-nil when the matrix is not standardizable (Sec. VI); the
	// other fields remain valid in that case and TMA is NaN.
	TMAErr error
}

// Characterize computes the full heterogeneity profile of an environment.
// It never fails: a non-standardizable environment (paper Sec. VI) yields
// TMA = NaN with the reason in Profile.TMAErr, and every other field stays
// valid. Callers that prefer an error to a NaN should use Measures.
func Characterize(env *etcmat.Env) *Profile {
	return CharacterizeCtx(context.Background(), env)
}

// CharacterizeCtx is Characterize with stage tracing: when ctx carries an
// obs.Trace, the sum-based measures are recorded as a "measures" span and
// the TMA pipeline emits its "standardize", "gram" and "eigensolve" spans
// (unless the Env had them memoized — no work, no span). Without a trace it
// is exactly Characterize.
func CharacterizeCtx(ctx context.Context, env *etcmat.Env) *Profile {
	sp := obs.StartSpan(ctx, "measures")
	p := &Profile{
		Tasks:       env.Tasks(),
		Machines:    env.Machines(),
		MPH:         MPH(env),
		TDH:         TDH(env),
		RatioR:      RatioR(env),
		GeoMeanG:    GeoMeanG(env),
		COV:         COV(env),
		MachinePerf: MachinePerformances(env),
		TaskDiff:    TaskDifficulties(env),
	}
	sp.End()
	res, err := TMACtx(ctx, env)
	if err != nil {
		p.TMA = math.NaN()
		p.TMAErr = err
		return p
	}
	p.TMA = res.TMA
	p.SinkhornIterations = res.Iterations
	p.Trimmed = res.Trimmed
	return p
}

// Measures is the error-returning characterization: the same Profile as
// Characterize, but a pipeline failure (today only standardization, paper
// Sec. VI) comes back as an error instead of a NaN field to inspect. The
// sum-based measures — MPH, TDH, RatioR, GeoMeanG, COV — never fail on a
// valid Env, so a non-nil error always means the TMA stage.
func Measures(env *etcmat.Env) (*Profile, error) {
	return MeasuresCtx(context.Background(), env)
}

// MeasuresCtx is Measures with stage tracing (see CharacterizeCtx).
func MeasuresCtx(ctx context.Context, env *etcmat.Env) (*Profile, error) {
	p := CharacterizeCtx(ctx, env)
	if p.TMAErr != nil {
		return nil, p.TMAErr
	}
	return p, nil
}

// String renders the headline measures.
func (p *Profile) String() string {
	tma := fmt.Sprintf("%.4f", p.TMA)
	if p.TMAErr != nil {
		tma = "n/a (" + p.TMAErr.Error() + ")"
	}
	return fmt.Sprintf("Profile{%dx%d MPH=%.4f TDH=%.4f TMA=%s}", p.Tasks, p.Machines, p.MPH, p.TDH, tma)
}
