// Package sched implements the independent-task mapping substrate that the
// reproduced paper's introduction motivates: one of the stated applications
// of the heterogeneity measures is "selecting appropriate heuristics to use
// in an HC environment based on its heterogeneity" (the paper's ref [3]).
//
// The heuristics are the classic static mappers of Braun et al. (the paper's
// ref [6], "A comparison of eleven static heuristics ..."): OLB, MET, MCT,
// K-percent best, Min-Min, Max-Min, Sufferage and Duplex, evaluated by
// makespan and flowtime on ETC instances derived from an environment.
package sched

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/etcmat"
	"repro/internal/matrix"
)

// Instance is a concrete mapping problem: etc[i][j] is the execution time of
// task instance i on machine j (+Inf if it cannot run there).
type Instance struct {
	ETC *matrix.Dense
}

// NewInstance validates and wraps an instance ETC matrix: every entry must
// be positive or +Inf, and every task must be runnable somewhere.
func NewInstance(etc *matrix.Dense) (*Instance, error) {
	n, m := etc.Dims()
	if n == 0 || m == 0 {
		return nil, errors.New("sched: empty instance")
	}
	for i := 0; i < n; i++ {
		runnable := false
		for j := 0; j < m; j++ {
			v := etc.At(i, j)
			if math.IsNaN(v) || v <= 0 {
				return nil, fmt.Errorf("sched: ETC(%d,%d) = %g must be positive or +Inf", i, j, v)
			}
			if !math.IsInf(v, 1) {
				runnable = true
			}
		}
		if !runnable {
			return nil, fmt.Errorf("sched: task %d cannot run on any machine", i)
		}
	}
	return &Instance{ETC: etc.Clone()}, nil
}

// Tasks returns the number of task instances.
func (in *Instance) Tasks() int { return in.ETC.Rows() }

// Machines returns the number of machines.
func (in *Instance) Machines() int { return in.ETC.Cols() }

// ExpandWorkload builds an instance from an environment by replicating task
// type i counts[i] times (the task-type weighting factor interpretation the
// paper gives in Sec. II-C: "the number of times that a task type is
// executed").
func ExpandWorkload(env *etcmat.Env, counts []int) (*Instance, error) {
	if len(counts) != env.Tasks() {
		return nil, fmt.Errorf("sched: %d counts for %d task types", len(counts), env.Tasks())
	}
	total := 0
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("sched: negative count for task type %d", i)
		}
		total += c
	}
	if total == 0 {
		return nil, errors.New("sched: empty workload")
	}
	etcTypes := env.ETC()
	etc := matrix.New(total, env.Machines())
	row := 0
	for i, c := range counts {
		for r := 0; r < c; r++ {
			for j := 0; j < env.Machines(); j++ {
				etc.Set(row, j, etcTypes.At(i, j))
			}
			row++
		}
	}
	return NewInstance(etc)
}

// UniformWorkload builds an instance with perInstance copies of every task
// type, shuffled by rng if non-nil (arrival order matters to the immediate-
// mode heuristics).
func UniformWorkload(env *etcmat.Env, perType int, rng *rand.Rand) (*Instance, error) {
	counts := make([]int, env.Tasks())
	for i := range counts {
		counts[i] = perType
	}
	in, err := ExpandWorkload(env, counts)
	if err != nil {
		return nil, err
	}
	if rng != nil {
		perm := rng.Perm(in.Tasks())
		in.ETC = in.ETC.PermuteRows(perm)
	}
	return in, nil
}

// Schedule is the result of a mapping heuristic.
type Schedule struct {
	// Assignment[i] is the machine task instance i runs on.
	Assignment []int
	// Makespan is the maximum machine finish time.
	Makespan float64
	// Flowtime is the sum of task completion times.
	Flowtime float64
	// MachineLoads[j] is the total execution time assigned to machine j.
	MachineLoads []float64
	// Heuristic is the name of the mapper that produced the schedule.
	Heuristic string
}

// Utilization returns per-machine load divided by the makespan, each in
// [0, 1]. A perfectly balanced schedule has all utilizations equal to 1.
func (s *Schedule) Utilization() []float64 {
	out := make([]float64, len(s.MachineLoads))
	if s.Makespan == 0 {
		return out
	}
	for j, l := range s.MachineLoads {
		out[j] = l / s.Makespan
	}
	return out
}

// Imbalance returns 1 − (mean utilization), a scalar load-balance defect in
// [0, 1): 0 means every machine is busy for the whole makespan.
func (s *Schedule) Imbalance() float64 {
	u := s.Utilization()
	if len(u) == 0 {
		return 0
	}
	return 1 - matrix.VecSum(u)/float64(len(u))
}

// Heuristic is a static mapping algorithm.
type Heuristic interface {
	Name() string
	Map(in *Instance) (*Schedule, error)
}

// All returns the full heuristic suite in a stable order. kpb is the
// percentage for the K-percent-best heuristic (Braun et al. use 20%).
func All() []Heuristic {
	return []Heuristic{
		OLB{}, MET{}, MCT{}, KPB{Percent: 20}, MinMin{}, MaxMin{}, Sufferage{}, Duplex{},
	}
}

// evaluate finalizes a schedule from an assignment, computing completion
// times in task order (immediate-mode semantics: completion time of task i
// is the machine's accumulated time after executing it).
func evaluate(in *Instance, name string, assignment []int) (*Schedule, error) {
	m := in.Machines()
	ready := make([]float64, m)
	flow := 0.0
	for i, j := range assignment {
		if j < 0 || j >= m {
			return nil, fmt.Errorf("sched: %s assigned task %d to invalid machine %d", name, i, j)
		}
		t := in.ETC.At(i, j)
		if math.IsInf(t, 1) {
			return nil, fmt.Errorf("sched: %s assigned task %d to machine %d where it cannot run", name, i, j)
		}
		ready[j] += t
		flow += ready[j]
	}
	mk := 0.0
	for _, r := range ready {
		if r > mk {
			mk = r
		}
	}
	return &Schedule{Assignment: assignment, Makespan: mk, Flowtime: flow, MachineLoads: ready, Heuristic: name}, nil
}

// OLB (opportunistic load balancing) assigns each task, in arrival order, to
// the machine that becomes available soonest, regardless of the task's ETC
// there.
type OLB struct{}

// Name implements Heuristic.
func (OLB) Name() string { return "OLB" }

// Map implements Heuristic.
func (OLB) Map(in *Instance) (*Schedule, error) {
	n, m := in.Tasks(), in.Machines()
	ready := make([]float64, m)
	asg := make([]int, n)
	for i := 0; i < n; i++ {
		best := -1
		for j := 0; j < m; j++ {
			if math.IsInf(in.ETC.At(i, j), 1) {
				continue
			}
			if best == -1 || ready[j] < ready[best] {
				best = j
			}
		}
		asg[i] = best
		ready[best] += in.ETC.At(i, best)
	}
	return evaluate(in, "OLB", asg)
}

// MET (minimum execution time) assigns each task to its fastest machine,
// ignoring machine load — it thrashes when one machine dominates.
type MET struct{}

// Name implements Heuristic.
func (MET) Name() string { return "MET" }

// Map implements Heuristic.
func (MET) Map(in *Instance) (*Schedule, error) {
	n, m := in.Tasks(), in.Machines()
	asg := make([]int, n)
	for i := 0; i < n; i++ {
		best := -1
		for j := 0; j < m; j++ {
			t := in.ETC.At(i, j)
			if math.IsInf(t, 1) {
				continue
			}
			if best == -1 || t < in.ETC.At(i, best) {
				best = j
			}
		}
		asg[i] = best
	}
	return evaluate(in, "MET", asg)
}

// MCT (minimum completion time) assigns each task, in arrival order, to the
// machine minimizing ready time + ETC.
type MCT struct{}

// Name implements Heuristic.
func (MCT) Name() string { return "MCT" }

// Map implements Heuristic.
func (MCT) Map(in *Instance) (*Schedule, error) {
	n, m := in.Tasks(), in.Machines()
	ready := make([]float64, m)
	asg := make([]int, n)
	for i := 0; i < n; i++ {
		best, bestCT := -1, math.Inf(1)
		for j := 0; j < m; j++ {
			t := in.ETC.At(i, j)
			if math.IsInf(t, 1) {
				continue
			}
			if ct := ready[j] + t; ct < bestCT {
				best, bestCT = j, ct
			}
		}
		asg[i] = best
		ready[best] = bestCT
	}
	return evaluate(in, "MCT", asg)
}

// KPB (k-percent best) restricts each task to its k% fastest machines and
// picks the minimum completion time among them — a compromise between MET
// and MCT.
type KPB struct {
	// Percent in (0, 100]; the subset size is max(1, round(m*Percent/100)).
	Percent float64
}

// Name implements Heuristic.
func (k KPB) Name() string { return fmt.Sprintf("KPB(%g%%)", k.Percent) }

// Map implements Heuristic.
func (k KPB) Map(in *Instance) (*Schedule, error) {
	if k.Percent <= 0 || k.Percent > 100 {
		return nil, fmt.Errorf("sched: KPB percent %g out of (0,100]", k.Percent)
	}
	n, m := in.Tasks(), in.Machines()
	ready := make([]float64, m)
	asg := make([]int, n)
	for i := 0; i < n; i++ {
		// Runnable machines sorted ascending by ETC.
		order := matrix.AscendingPerm(in.ETC.Row(i))
		runnable := order[:0:len(order)]
		for _, j := range order {
			if !math.IsInf(in.ETC.At(i, j), 1) {
				runnable = append(runnable, j)
			}
		}
		sz := int(math.Round(float64(m) * k.Percent / 100))
		if sz < 1 {
			sz = 1
		}
		if sz > len(runnable) {
			sz = len(runnable)
		}
		best, bestCT := -1, math.Inf(1)
		for _, j := range runnable[:sz] {
			if ct := ready[j] + in.ETC.At(i, j); ct < bestCT {
				best, bestCT = j, ct
			}
		}
		asg[i] = best
		ready[best] = bestCT
	}
	return evaluate(in, k.Name(), asg)
}

// batchMap implements the Min-Min / Max-Min / Sufferage family. selector
// picks which unmapped task to fix next, given each task's current best
// completion time, second-best completion time and best machine.
func batchMap(in *Instance, name string, selector func(bestCT, secondCT []float64, unmapped []int) int) (*Schedule, error) {
	n, m := in.Tasks(), in.Machines()
	ready := make([]float64, m)
	asg := make([]int, n)
	for i := range asg {
		asg[i] = -1
	}
	unmapped := make([]int, n)
	for i := range unmapped {
		unmapped[i] = i
	}
	bestCT := make([]float64, n)
	secondCT := make([]float64, n)
	bestM := make([]int, n)
	recompute := func(i int) {
		b, s, bj := math.Inf(1), math.Inf(1), -1
		for j := 0; j < m; j++ {
			t := in.ETC.At(i, j)
			if math.IsInf(t, 1) {
				continue
			}
			ct := ready[j] + t
			if ct < b {
				s = b
				b, bj = ct, j
			} else if ct < s {
				s = ct
			}
		}
		bestCT[i], secondCT[i], bestM[i] = b, s, bj
	}
	for _, i := range unmapped {
		recompute(i)
	}
	for len(unmapped) > 0 {
		pick := selector(bestCT, secondCT, unmapped)
		i := unmapped[pick]
		j := bestM[i]
		asg[i] = j
		ready[j] += in.ETC.At(i, j)
		unmapped[pick] = unmapped[len(unmapped)-1]
		unmapped = unmapped[:len(unmapped)-1]
		// Only completion times on machine j changed, but best values depend
		// on it; recompute affected tasks.
		for _, u := range unmapped {
			recompute(u)
		}
	}
	// Completion-time bookkeeping for flowtime in mapping order is already
	// folded into evaluate (task order), which is the standard reporting.
	return evaluate(in, name, asg)
}

// MinMin repeatedly maps the task with the smallest best completion time —
// the strongest simple batch heuristic in Braun et al.'s comparison.
type MinMin struct{}

// Name implements Heuristic.
func (MinMin) Name() string { return "Min-Min" }

// Map implements Heuristic.
func (MinMin) Map(in *Instance) (*Schedule, error) {
	return batchMap(in, "Min-Min", func(bestCT, _ []float64, unmapped []int) int {
		pick, best := 0, math.Inf(1)
		for k, i := range unmapped {
			if bestCT[i] < best {
				pick, best = k, bestCT[i]
			}
		}
		return pick
	})
}

// MaxMin repeatedly maps the task whose best completion time is largest,
// front-loading long tasks.
type MaxMin struct{}

// Name implements Heuristic.
func (MaxMin) Name() string { return "Max-Min" }

// Map implements Heuristic.
func (MaxMin) Map(in *Instance) (*Schedule, error) {
	return batchMap(in, "Max-Min", func(bestCT, _ []float64, unmapped []int) int {
		pick, best := 0, math.Inf(-1)
		for k, i := range unmapped {
			if bestCT[i] > best {
				pick, best = k, bestCT[i]
			}
		}
		return pick
	})
}

// Sufferage repeatedly maps the task that would suffer most if denied its
// best machine (largest second-best minus best completion time).
type Sufferage struct{}

// Name implements Heuristic.
func (Sufferage) Name() string { return "Sufferage" }

// Map implements Heuristic.
func (Sufferage) Map(in *Instance) (*Schedule, error) {
	return batchMap(in, "Sufferage", func(bestCT, secondCT []float64, unmapped []int) int {
		pick, best := 0, math.Inf(-1)
		for k, i := range unmapped {
			suff := secondCT[i] - bestCT[i]
			if math.IsInf(secondCT[i], 1) {
				// Only one runnable machine: infinite sufferage.
				suff = math.Inf(1)
			}
			if suff > best {
				pick, best = k, suff
			}
		}
		return pick
	})
}

// Duplex runs Min-Min and Max-Min and keeps the schedule with the smaller
// makespan.
type Duplex struct{}

// Name implements Heuristic.
func (Duplex) Name() string { return "Duplex" }

// Map implements Heuristic.
func (Duplex) Map(in *Instance) (*Schedule, error) {
	a, err := (MinMin{}).Map(in)
	if err != nil {
		return nil, err
	}
	b, err := (MaxMin{}).Map(in)
	if err != nil {
		return nil, err
	}
	best := a
	if b.Makespan < a.Makespan {
		best = b
	}
	out := *best
	out.Heuristic = "Duplex"
	return &out, nil
}

// RunAll maps the instance with every heuristic in hs (All() if nil) and
// returns the schedules in the same order.
func RunAll(in *Instance, hs []Heuristic) ([]*Schedule, error) {
	if hs == nil {
		hs = All()
	}
	out := make([]*Schedule, 0, len(hs))
	for _, h := range hs {
		s, err := h.Map(in)
		if err != nil {
			return nil, fmt.Errorf("sched: %s: %w", h.Name(), err)
		}
		out = append(out, s)
	}
	return out, nil
}

// LowerBound returns a simple makespan lower bound:
// max(longest minimum execution time, total minimum work / machines).
func LowerBound(in *Instance) float64 {
	n, m := in.Tasks(), in.Machines()
	maxMin, sumMin := 0.0, 0.0
	for i := 0; i < n; i++ {
		best := math.Inf(1)
		for j := 0; j < m; j++ {
			if t := in.ETC.At(i, j); t < best {
				best = t
			}
		}
		sumMin += best
		if best > maxMin {
			maxMin = best
		}
	}
	if avg := sumMin / float64(m); avg > maxMin {
		return avg
	}
	return maxMin
}
