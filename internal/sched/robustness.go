package sched

import (
	"fmt"
	"math"
)

// Robustness of a mapping against ETC estimation error, in the style of the
// reproduced paper's research group (Ali, Maciejewski, Siegel et al.,
// "Measuring the robustness of a resource allocation"): the makespan is
// required to stay within tau times its estimated value; the robustness
// radius of machine j is the smallest collective (Euclidean) perturbation of
// the execution times of the tasks mapped to j that can break that promise,
//
//	r_j = (tau·makespan − F_j) / √n_j,
//
// where F_j is machine j's estimated finish time and n_j its task count
// (machines with no tasks are unbreakable: r_j = +Inf). The schedule's
// robustness is the minimum radius over machines — the distance to the
// nearest failure.
type Robustness struct {
	// Radii per machine (+Inf for idle machines).
	Radii []float64
	// Min is the schedule robustness: the smallest radius.
	Min float64
	// CriticalMachine is the argmin.
	CriticalMachine int
	// Tau echoes the tolerance used.
	Tau float64
}

// RobustnessRadius computes the robustness of schedule s for instance in at
// tolerance tau (> 1 for a real margin; tau = 1 gives zero robustness on the
// makespan machine).
func RobustnessRadius(in *Instance, s *Schedule, tau float64) (*Robustness, error) {
	if tau < 1 {
		return nil, fmt.Errorf("sched: robustness tolerance tau = %g must be >= 1", tau)
	}
	m := in.Machines()
	if len(s.MachineLoads) != m {
		return nil, fmt.Errorf("sched: schedule has %d machine loads for %d machines", len(s.MachineLoads), m)
	}
	counts := make([]int, m)
	for _, j := range s.Assignment {
		if j < 0 || j >= m {
			return nil, fmt.Errorf("sched: invalid assignment to machine %d", j)
		}
		counts[j]++
	}
	r := &Robustness{Radii: make([]float64, m), Min: math.Inf(1), CriticalMachine: -1, Tau: tau}
	limit := tau * s.Makespan
	for j := 0; j < m; j++ {
		if counts[j] == 0 {
			r.Radii[j] = math.Inf(1)
			continue
		}
		r.Radii[j] = (limit - s.MachineLoads[j]) / math.Sqrt(float64(counts[j]))
		if r.Radii[j] < r.Min {
			r.Min = r.Radii[j]
			r.CriticalMachine = j
		}
	}
	if r.CriticalMachine == -1 {
		// No machine hosts a task — impossible for validated instances.
		return nil, fmt.Errorf("sched: schedule assigns no tasks")
	}
	return r, nil
}

// NormalizedRobustness returns Min / makespan — a dimensionless robustness
// that can be compared across environments and workloads.
func (r *Robustness) NormalizedRobustness(s *Schedule) float64 {
	if s.Makespan == 0 {
		return 0
	}
	return r.Min / s.Makespan
}
