package sched

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/etcmat"
	"repro/internal/matrix"
)

func inst(rows [][]float64) *Instance {
	in, err := NewInstance(matrix.FromRows(rows))
	if err != nil {
		panic(err)
	}
	return in
}

func TestNewInstanceValidation(t *testing.T) {
	if _, err := NewInstance(matrix.New(0, 0)); err == nil {
		t.Error("empty instance accepted")
	}
	if _, err := NewInstance(matrix.FromRows([][]float64{{0, 1}})); err == nil {
		t.Error("zero ETC accepted")
	}
	if _, err := NewInstance(matrix.FromRows([][]float64{{-1, 1}})); err == nil {
		t.Error("negative ETC accepted")
	}
	inf := math.Inf(1)
	if _, err := NewInstance(matrix.FromRows([][]float64{{inf, inf}})); err == nil {
		t.Error("unrunnable task accepted")
	}
	if _, err := NewInstance(matrix.FromRows([][]float64{{inf, 1}})); err != nil {
		t.Errorf("partially runnable task rejected: %v", err)
	}
}

func TestExpandWorkload(t *testing.T) {
	env := etcmat.MustFromETC([][]float64{{1, 2}, {3, 4}})
	in, err := ExpandWorkload(env, []int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if in.Tasks() != 3 {
		t.Fatalf("tasks = %d, want 3", in.Tasks())
	}
	if in.ETC.At(0, 0) != 1 || in.ETC.At(1, 0) != 1 || in.ETC.At(2, 1) != 4 {
		t.Errorf("expanded ETC wrong:\n%v", in.ETC)
	}
	if _, err := ExpandWorkload(env, []int{1}); err == nil {
		t.Error("wrong-length counts accepted")
	}
	if _, err := ExpandWorkload(env, []int{0, 0}); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := ExpandWorkload(env, []int{-1, 2}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestUniformWorkloadShuffleDeterministic(t *testing.T) {
	env := etcmat.MustFromETC([][]float64{{1, 2}, {3, 4}, {5, 6}})
	a, err := UniformWorkload(env, 4, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := UniformWorkload(env, 4, rand.New(rand.NewSource(7)))
	if !matrix.EqualTol(a.ETC, b.ETC, 0) {
		t.Error("same seed produced different workloads")
	}
	if a.Tasks() != 12 {
		t.Errorf("tasks = %d, want 12", a.Tasks())
	}
}

func TestOLBIgnoresSpeed(t *testing.T) {
	// Machine 0 is fast, machine 1 slow; OLB alternates by availability.
	in := inst([][]float64{{1, 100}, {1, 100}})
	s, err := (OLB{}).Map(in)
	if err != nil {
		t.Fatal(err)
	}
	// Task 0 -> m0 (both ready at 0, first wins); task 1 -> m1 (ready 0 < 1).
	if s.Assignment[0] != 0 || s.Assignment[1] != 1 {
		t.Errorf("assignment = %v", s.Assignment)
	}
	if s.Makespan != 100 {
		t.Errorf("makespan = %g, want 100", s.Makespan)
	}
}

func TestMETPicksFastestMachine(t *testing.T) {
	in := inst([][]float64{{5, 1}, {5, 1}, {5, 1}})
	s, err := (MET{}).Map(in)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range s.Assignment {
		if j != 1 {
			t.Errorf("task %d on machine %d, want 1", i, j)
		}
	}
	if s.Makespan != 3 {
		t.Errorf("makespan = %g, want 3", s.Makespan)
	}
}

func TestMCTBalancesLoad(t *testing.T) {
	in := inst([][]float64{{2, 2}, {2, 2}, {2, 2}, {2, 2}})
	s, err := (MCT{}).Map(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 4 {
		t.Errorf("makespan = %g, want 4 (2 tasks per machine)", s.Makespan)
	}
}

func TestMinMinKnownExample(t *testing.T) {
	// Classic 3-task 2-machine example: Min-Min schedules short tasks first.
	in := inst([][]float64{
		{2, 4},
		{4, 8},
		{6, 3},
	})
	s, err := (MinMin{}).Map(in)
	if err != nil {
		t.Fatal(err)
	}
	// Step 1: best CTs are (2@m0, 4@m0, 3@m1) -> task 0 on m0 (CT 2).
	// Step 2: best CTs are (task1: 6@m0, task2: 3@m1) -> task 2 on m1 (CT 3).
	// Step 3: task 1: m0 gives 2+4=6, m1 gives 3+8=11 -> m0.
	want := []int{0, 0, 1}
	for i := range want {
		if s.Assignment[i] != want[i] {
			t.Fatalf("assignment = %v, want %v", s.Assignment, want)
		}
	}
	if s.Makespan != 6 {
		t.Errorf("makespan = %g, want 6", s.Makespan)
	}
}

func TestMaxMinFrontLoadsLongTasks(t *testing.T) {
	// One long task and several short ones: Max-Min places the long task
	// first and packs the short ones elsewhere.
	in := inst([][]float64{
		{10, 10},
		{1, 1},
		{1, 1},
		{1, 1},
	})
	s, err := (MaxMin{}).Map(in)
	if err != nil {
		t.Fatal(err)
	}
	long := s.Assignment[0]
	for i := 1; i < 4; i++ {
		if s.Assignment[i] == long {
			t.Errorf("short task %d shares machine with the long task", i)
		}
	}
	if s.Makespan != 10 {
		t.Errorf("makespan = %g, want 10", s.Makespan)
	}
}

func TestSufferagePrefersHighPenaltyTasks(t *testing.T) {
	// Task 0 runs equally anywhere (sufferage 0); task 1 strongly prefers
	// machine 0. Sufferage must fix task 1 first so it wins machine 0.
	in := inst([][]float64{
		{5, 5},
		{1, 50},
	})
	s, err := (Sufferage{}).Map(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Assignment[1] != 0 {
		t.Errorf("high-sufferage task lost its preferred machine: %v", s.Assignment)
	}
	if s.Makespan != 5 {
		t.Errorf("makespan = %g, want 5", s.Makespan)
	}
}

func TestSufferageSingleRunnableMachine(t *testing.T) {
	inf := math.Inf(1)
	in := inst([][]float64{
		{1, inf}, // must go to m0, infinite sufferage
		{1, 1},
	})
	s, err := (Sufferage{}).Map(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Assignment[0] != 0 {
		t.Errorf("pinned task not on its only machine: %v", s.Assignment)
	}
}

func TestDuplexTakesBetterOfMinMinMaxMin(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(rng, 12, 4)
		mm, _ := (MinMin{}).Map(in)
		xm, _ := (MaxMin{}).Map(in)
		d, err := (Duplex{}).Map(in)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Min(mm.Makespan, xm.Makespan)
		if d.Makespan != want {
			t.Fatalf("Duplex makespan %g, want min(%g, %g)", d.Makespan, mm.Makespan, xm.Makespan)
		}
		if d.Heuristic != "Duplex" {
			t.Fatalf("Heuristic = %s", d.Heuristic)
		}
	}
}

func TestKPBValidation(t *testing.T) {
	in := inst([][]float64{{1, 2}})
	if _, err := (KPB{Percent: 0}).Map(in); err == nil {
		t.Error("KPB 0% accepted")
	}
	if _, err := (KPB{Percent: 101}).Map(in); err == nil {
		t.Error("KPB 101% accepted")
	}
}

func TestKPB100EqualsMCT(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng, 10, 5)
		kpb, err := (KPB{Percent: 100}).Map(in)
		if err != nil {
			t.Fatal(err)
		}
		mct, err := (MCT{}).Map(in)
		if err != nil {
			t.Fatal(err)
		}
		if kpb.Makespan != mct.Makespan {
			t.Fatalf("KPB(100%%) makespan %g != MCT %g", kpb.Makespan, mct.Makespan)
		}
	}
}

func TestKPBSmallPercentApproachesMET(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	in := randomInstance(rng, 10, 5)
	kpb, err := (KPB{Percent: 1}).Map(in) // subset size 1 = fastest machine
	if err != nil {
		t.Fatal(err)
	}
	met, err := (MET{}).Map(in)
	if err != nil {
		t.Fatal(err)
	}
	if kpb.Makespan != met.Makespan {
		t.Errorf("KPB(1%%) makespan %g != MET %g", kpb.Makespan, met.Makespan)
	}
}

// Every heuristic must produce a valid schedule whose makespan respects the
// lower bound and never exceeds serial execution on one machine.
func TestAllHeuristicsValidAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(rng, 3+rng.Intn(20), 2+rng.Intn(6))
		lb := LowerBound(in)
		schedules, err := RunAll(in, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(schedules) != len(All()) {
			t.Fatalf("got %d schedules", len(schedules))
		}
		for _, s := range schedules {
			if len(s.Assignment) != in.Tasks() {
				t.Fatalf("%s: assignment length %d", s.Heuristic, len(s.Assignment))
			}
			if s.Makespan < lb-1e-9 {
				t.Fatalf("%s: makespan %g below lower bound %g", s.Heuristic, s.Makespan, lb)
			}
			if s.Flowtime < s.Makespan {
				t.Fatalf("%s: flowtime %g < makespan %g", s.Heuristic, s.Flowtime, s.Makespan)
			}
			// Recompute makespan from the assignment to cross-check.
			ready := make([]float64, in.Machines())
			for i, j := range s.Assignment {
				ready[j] += in.ETC.At(i, j)
			}
			mk := 0.0
			for _, r := range ready {
				mk = math.Max(mk, r)
			}
			if math.Abs(mk-s.Makespan) > 1e-9 {
				t.Fatalf("%s: reported makespan %g, recomputed %g", s.Heuristic, s.Makespan, mk)
			}
		}
	}
}

// In a homogeneous environment with equal tasks, MCT, Min-Min, Max-Min and
// Sufferage all achieve the balanced optimum.
func TestHomogeneousOptimum(t *testing.T) {
	rows := make([][]float64, 8)
	for i := range rows {
		rows[i] = []float64{3, 3, 3, 3}
	}
	in := inst(rows)
	for _, h := range []Heuristic{MCT{}, MinMin{}, MaxMin{}, Sufferage{}, Duplex{}} {
		s, err := h.Map(in)
		if err != nil {
			t.Fatal(err)
		}
		if s.Makespan != 6 {
			t.Errorf("%s: makespan = %g, want 6", h.Name(), s.Makespan)
		}
	}
}

// MET collapses onto the single fastest machine when one machine dominates;
// MCT does not — the classic failure mode that makes heuristic choice
// heterogeneity dependent.
func TestMETCollapseVsMCT(t *testing.T) {
	rows := make([][]float64, 10)
	for i := range rows {
		rows[i] = []float64{1, 1.1}
	}
	in := inst(rows)
	met, _ := (MET{}).Map(in)
	mct, _ := (MCT{}).Map(in)
	if met.Makespan <= mct.Makespan {
		t.Errorf("expected MET (%g) to lose to MCT (%g) here", met.Makespan, mct.Makespan)
	}
}

func TestScheduleLoadsAndUtilization(t *testing.T) {
	in := inst([][]float64{{2, 2}, {2, 2}, {2, 2}, {2, 2}})
	s, err := (MCT{}).Map(in)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.VecEqualTol(s.MachineLoads, []float64{4, 4}, 1e-12) {
		t.Errorf("MachineLoads = %v, want [4 4]", s.MachineLoads)
	}
	u := s.Utilization()
	if !matrix.VecEqualTol(u, []float64{1, 1}, 1e-12) {
		t.Errorf("Utilization = %v, want [1 1]", u)
	}
	if got := s.Imbalance(); got != 0 {
		t.Errorf("Imbalance = %g, want 0 for a perfectly balanced schedule", got)
	}
	// MET puts everything on one machine: utilization (1, 0), imbalance 0.5.
	sm, err := (MET{}).Map(inst([][]float64{{1, 2}, {1, 2}}))
	if err != nil {
		t.Fatal(err)
	}
	if got := sm.Imbalance(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MET imbalance = %g, want 0.5", got)
	}
}

// Loads must always be consistent with the assignment and sum to the total
// assigned work.
func TestScheduleLoadsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	in := randomInstance(rng, 15, 4)
	for _, h := range All() {
		s, err := h.Map(in)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, in.Machines())
		for i, j := range s.Assignment {
			want[j] += in.ETC.At(i, j)
		}
		if !matrix.VecEqualTol(s.MachineLoads, want, 1e-9) {
			t.Errorf("%s: loads %v inconsistent with assignment", s.Heuristic, s.MachineLoads)
		}
		for _, u := range s.Utilization() {
			if u < 0 || u > 1+1e-12 {
				t.Errorf("%s: utilization %g outside [0,1]", s.Heuristic, u)
			}
		}
	}
}

func TestLowerBound(t *testing.T) {
	in := inst([][]float64{{4, 8}, {2, 2}})
	// sum of minima = 6, machines = 2 -> 3 ; longest minimum = 4 -> LB = 4.
	if got := LowerBound(in); got != 4 {
		t.Errorf("LowerBound = %g, want 4", got)
	}
}

func randomInstance(rng *rand.Rand, n, m int) *Instance {
	etc := matrix.New(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			etc.Set(i, j, 0.5+rng.Float64()*10)
		}
	}
	in, err := NewInstance(etc)
	if err != nil {
		panic(err)
	}
	return in
}
