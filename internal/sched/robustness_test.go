package sched

import (
	"math"
	"math/rand"
	"testing"
)

func TestRobustnessHandComputed(t *testing.T) {
	// 3 tasks on 2 machines: m0 gets two 2s tasks (F=4, n=2), m1 one 3s
	// task (F=3, n=1). Makespan 4. At tau=1.5: limit 6.
	// r0 = (6-4)/sqrt(2), r1 = (6-3)/1 = 3. Min = r0.
	in := inst([][]float64{{2, 10}, {2, 10}, {10, 3}})
	s, err := evaluate(in, "manual", []int{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := RobustnessRadius(in, s, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	want0 := 2 / math.Sqrt2
	if math.Abs(r.Radii[0]-want0) > 1e-12 {
		t.Errorf("r0 = %g, want %g", r.Radii[0], want0)
	}
	if math.Abs(r.Radii[1]-3) > 1e-12 {
		t.Errorf("r1 = %g, want 3", r.Radii[1])
	}
	if r.CriticalMachine != 0 || math.Abs(r.Min-want0) > 1e-12 {
		t.Errorf("min = %g on machine %d", r.Min, r.CriticalMachine)
	}
}

// At tau = 1, the makespan machine has zero margin.
func TestRobustnessTauOne(t *testing.T) {
	in := inst([][]float64{{2, 2}, {2, 2}, {2, 2}})
	s, err := (MCT{}).Map(in)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RobustnessRadius(in, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Min > 1e-12 {
		t.Errorf("tau=1 robustness = %g, want 0", r.Min)
	}
}

func TestRobustnessIdleMachineInfinite(t *testing.T) {
	in := inst([][]float64{{1, 5}})
	s, err := (MCT{}).Map(in) // single task on m0; m1 idle
	if err != nil {
		t.Fatal(err)
	}
	r, err := RobustnessRadius(in, s, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(r.Radii[1], 1) {
		t.Errorf("idle machine radius = %g, want +Inf", r.Radii[1])
	}
}

func TestRobustnessValidation(t *testing.T) {
	in := inst([][]float64{{1, 1}})
	s, _ := (MCT{}).Map(in)
	if _, err := RobustnessRadius(in, s, 0.5); err == nil {
		t.Error("tau < 1 accepted")
	}
}

// Scaling property: doubling all ETC values doubles every radius but leaves
// the normalized robustness unchanged.
func TestRobustnessScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	in := randomInstance(rng, 12, 4)
	s, err := (MinMin{}).Map(in)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RobustnessRadius(in, s, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := NewInstance(in.ETC.Scaled(2))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := (MinMin{}).Map(scaled)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RobustnessRadius(scaled, s2, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2.Min-2*r1.Min) > 1e-9*(1+r1.Min) {
		t.Errorf("radius did not scale: %g vs 2*%g", r2.Min, r1.Min)
	}
	if math.Abs(r1.NormalizedRobustness(s)-r2.NormalizedRobustness(s2)) > 1e-12 {
		t.Error("normalized robustness not scale invariant")
	}
}

// Larger tau can only increase every radius.
func TestRobustnessMonotoneInTau(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	in := randomInstance(rng, 10, 3)
	s, err := (Sufferage{}).Map(in)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := RobustnessRadius(in, s, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := RobustnessRadius(in, s, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if hi.Min <= lo.Min {
		t.Errorf("robustness not monotone in tau: %g vs %g", hi.Min, lo.Min)
	}
}

// Every heuristic's schedule yields finite nonnegative robustness for
// tau > 1 on dense instances.
func TestRobustnessAcrossHeuristics(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	in := randomInstance(rng, 20, 5)
	for _, h := range All() {
		s, err := h.Map(in)
		if err != nil {
			t.Fatal(err)
		}
		r, err := RobustnessRadius(in, s, 1.2)
		if err != nil {
			t.Fatalf("%s: %v", s.Heuristic, err)
		}
		if r.Min < 0 || math.IsInf(r.Min, 0) || math.IsNaN(r.Min) {
			t.Errorf("%s: robustness %g", s.Heuristic, r.Min)
		}
	}
}
