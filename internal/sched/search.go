package sched

import (
	"fmt"
	"math"
	"math/rand"
)

// This file adds the search-based mappers from Braun et al.'s eleven-
// heuristic comparison (the paper's ref [6]): a genetic algorithm and
// simulated annealing. Both operate on assignment vectors (one machine per
// task instance) with makespan as the fitness, are seeded with the Min-Min
// solution as Braun et al. do, and are deterministic given their RNG seed.

// GA is a genetic-algorithm mapper over assignment vectors.
type GA struct {
	// Population size (default 100).
	Population int
	// Generations caps the search (default 200).
	Generations int
	// MutationRate is the per-task probability of random reassignment in an
	// offspring (default 0.02).
	MutationRate float64
	// Elite is the number of best chromosomes carried over unchanged
	// (default 2).
	Elite int
	// Seed makes the run reproducible (default 1).
	Seed int64
}

// Name implements Heuristic.
func (g GA) Name() string { return "GA" }

func (g GA) withDefaults() GA {
	if g.Population <= 0 {
		g.Population = 100
	}
	if g.Generations <= 0 {
		g.Generations = 200
	}
	if g.MutationRate <= 0 {
		g.MutationRate = 0.02
	}
	if g.Elite <= 0 {
		g.Elite = 2
	}
	if g.Elite >= g.Population {
		g.Elite = g.Population - 1
	}
	if g.Seed == 0 {
		g.Seed = 1
	}
	return g
}

// Map implements Heuristic.
func (g GA) Map(in *Instance) (*Schedule, error) {
	g = g.withDefaults()
	rng := rand.New(rand.NewSource(g.Seed))
	n := in.Tasks()

	runnable, err := runnableMachines(in)
	if err != nil {
		return nil, err
	}

	// Seed the population with Min-Min plus randoms (Braun et al.).
	mm, err := (MinMin{}).Map(in)
	if err != nil {
		return nil, err
	}
	pop := make([][]int, g.Population)
	pop[0] = append([]int(nil), mm.Assignment...)
	for p := 1; p < g.Population; p++ {
		pop[p] = randomAssignment(runnable, rng)
	}
	fitness := make([]float64, g.Population)
	for p := range pop {
		fitness[p] = makespanOf(in, pop[p])
	}

	next := make([][]int, g.Population)
	for gen := 0; gen < g.Generations; gen++ {
		order := sortedByFitness(fitness)
		// Elitism.
		for e := 0; e < g.Elite; e++ {
			next[e] = append(next[e][:0], pop[order[e]]...)
		}
		// Offspring by tournament selection + single-point crossover +
		// mutation.
		for p := g.Elite; p < g.Population; p++ {
			a := pop[tournament(fitness, rng)]
			b := pop[tournament(fitness, rng)]
			child := next[p]
			if cap(child) < n {
				child = make([]int, n)
			}
			child = child[:n]
			cut := rng.Intn(n)
			copy(child[:cut], a[:cut])
			copy(child[cut:], b[cut:])
			for i := 0; i < n; i++ {
				if rng.Float64() < g.MutationRate {
					child[i] = runnable[i][rng.Intn(len(runnable[i]))]
				}
			}
			next[p] = child
		}
		pop, next = next, pop
		for p := range pop {
			fitness[p] = makespanOf(in, pop[p])
		}
	}
	best := 0
	for p := 1; p < g.Population; p++ {
		if fitness[p] < fitness[best] {
			best = p
		}
	}
	return evaluate(in, "GA", pop[best])
}

// SA is a simulated-annealing mapper over assignment vectors.
type SA struct {
	// Iterations of the annealing loop (default 20000).
	Iterations int
	// InitialTemp as a fraction of the seed makespan (default 0.1).
	InitialTemp float64
	// Cooling is the geometric cooling factor applied every iteration
	// (default computed to land near zero temperature at the end).
	Cooling float64
	// Seed makes the run reproducible (default 1).
	Seed int64
}

// Name implements Heuristic.
func (s SA) Name() string { return "SA" }

// Map implements Heuristic.
func (s SA) Map(in *Instance) (*Schedule, error) {
	if s.Iterations <= 0 {
		s.Iterations = 20000
	}
	if s.InitialTemp <= 0 {
		s.InitialTemp = 0.1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	rng := rand.New(rand.NewSource(s.Seed))
	n := in.Tasks()
	runnable, err := runnableMachines(in)
	if err != nil {
		return nil, err
	}
	mm, err := (MinMin{}).Map(in)
	if err != nil {
		return nil, err
	}
	cur := append([]int(nil), mm.Assignment...)
	curMk := mm.Makespan
	best := append([]int(nil), cur...)
	bestMk := curMk
	temp := s.InitialTemp * curMk
	cooling := s.Cooling
	if cooling <= 0 || cooling >= 1 {
		// Reach ~1e-4 of the initial temperature by the final iteration.
		cooling = math.Pow(1e-4, 1/float64(s.Iterations))
	}
	for it := 0; it < s.Iterations; it++ {
		i := rng.Intn(n)
		old := cur[i]
		cur[i] = runnable[i][rng.Intn(len(runnable[i]))]
		mk := makespanOf(in, cur)
		if mk <= curMk || (temp > 0 && rng.Float64() < math.Exp((curMk-mk)/temp)) {
			curMk = mk
			if mk < bestMk {
				bestMk = mk
				copy(best, cur)
			}
		} else {
			cur[i] = old
		}
		temp *= cooling
	}
	return evaluate(in, "SA", best)
}

// runnableMachines lists, per task, the machines it can execute on.
func runnableMachines(in *Instance) ([][]int, error) {
	n, m := in.Tasks(), in.Machines()
	out := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if !math.IsInf(in.ETC.At(i, j), 1) {
				out[i] = append(out[i], j)
			}
		}
		if len(out[i]) == 0 {
			return nil, fmt.Errorf("sched: task %d cannot run anywhere", i)
		}
	}
	return out, nil
}

func randomAssignment(runnable [][]int, rng *rand.Rand) []int {
	out := make([]int, len(runnable))
	for i, r := range runnable {
		out[i] = r[rng.Intn(len(r))]
	}
	return out
}

// makespanOf computes the makespan of an assignment without allocating a
// Schedule — the hot loop of the search mappers.
func makespanOf(in *Instance, assignment []int) float64 {
	m := in.Machines()
	ready := make([]float64, m)
	for i, j := range assignment {
		ready[j] += in.ETC.At(i, j)
	}
	mk := 0.0
	for _, r := range ready {
		if r > mk {
			mk = r
		}
	}
	return mk
}

func sortedByFitness(fitness []float64) []int {
	order := make([]int, len(fitness))
	for i := range order {
		order[i] = i
	}
	// Insertion sort: populations are small and mostly ordered between
	// generations.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && fitness[order[j]] < fitness[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

func tournament(fitness []float64, rng *rand.Rand) int {
	a := rng.Intn(len(fitness))
	b := rng.Intn(len(fitness))
	if fitness[a] <= fitness[b] {
		return a
	}
	return b
}
