package sched

import (
	"math"
	"math/rand"
	"testing"
)

// Both search mappers are seeded with Min-Min, so they can never be worse.
func TestSearchMappersNeverWorseThanMinMin(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for trial := 0; trial < 5; trial++ {
		in := randomInstance(rng, 20, 4)
		mm, err := (MinMin{}).Map(in)
		if err != nil {
			t.Fatal(err)
		}
		ga, err := (GA{Population: 40, Generations: 60, Seed: int64(trial + 1)}).Map(in)
		if err != nil {
			t.Fatal(err)
		}
		if ga.Makespan > mm.Makespan+1e-9 {
			t.Errorf("trial %d: GA %g worse than Min-Min seed %g", trial, ga.Makespan, mm.Makespan)
		}
		sa, err := (SA{Iterations: 5000, Seed: int64(trial + 1)}).Map(in)
		if err != nil {
			t.Fatal(err)
		}
		if sa.Makespan > mm.Makespan+1e-9 {
			t.Errorf("trial %d: SA %g worse than Min-Min seed %g", trial, sa.Makespan, mm.Makespan)
		}
		lb := LowerBound(in)
		if ga.Makespan < lb-1e-9 || sa.Makespan < lb-1e-9 {
			t.Errorf("trial %d: search result below lower bound %g", trial, lb)
		}
	}
}

// On a small instance with a known optimum the GA should find it.
func TestGAFindsOptimumOnSmallInstance(t *testing.T) {
	// 4 identical tasks, 2 identical machines: optimum 2 per machine = 6.
	rows := make([][]float64, 4)
	for i := range rows {
		rows[i] = []float64{3, 3}
	}
	in := inst(rows)
	s, err := (GA{Population: 30, Generations: 50, Seed: 3}).Map(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 6 {
		t.Errorf("GA makespan = %g, want 6", s.Makespan)
	}
}

// The GA must beat Min-Min on an instance engineered so greedy mapping is
// suboptimal: Min-Min commits short tasks to the fast machine, then the two
// long tasks collide.
func TestGAImprovesOnGreedyTrap(t *testing.T) {
	in := inst([][]float64{
		{2, 3},
		{2, 3},
		{4, 7},
		{4, 7},
	})
	mm, _ := (MinMin{}).Map(in)
	ga, err := (GA{Population: 60, Generations: 120, Seed: 5}).Map(in)
	if err != nil {
		t.Fatal(err)
	}
	if ga.Makespan > mm.Makespan {
		t.Errorf("GA %g did not match/beat Min-Min %g", ga.Makespan, mm.Makespan)
	}
	// The true optimum here is 7: {t0,t1,t2}->m0 (8)? No: m0={2,4}=6,
	// m1={2? ...}. Enumerate: best split gives makespan 7 (e.g. t2,t0 on m0
	// = 6; t3,t1 on m1 = 10? not 7). Verify GA is within 15% of the brute
	// optimum instead of hardcoding.
	best := bruteForceOptimum(in)
	if ga.Makespan > best*1.15+1e-9 {
		t.Errorf("GA %g far from optimum %g", ga.Makespan, best)
	}
}

func TestSARespectsRunnableSets(t *testing.T) {
	inf := math.Inf(1)
	in := inst([][]float64{
		{1, inf},
		{inf, 1},
		{2, 2},
	})
	s, err := (SA{Iterations: 2000, Seed: 2}).Map(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Assignment[0] != 0 || s.Assignment[1] != 1 {
		t.Errorf("SA violated runnability: %v", s.Assignment)
	}
}

func TestGADeterministicBySeed(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	in := randomInstance(rng, 15, 3)
	a, err := (GA{Population: 20, Generations: 30, Seed: 7}).Map(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (GA{Population: 20, Generations: 30, Seed: 7}).Map(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Errorf("same seed, different makespans: %g vs %g", a.Makespan, b.Makespan)
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatalf("same seed, different assignments at task %d", i)
		}
	}
}

func TestSADeterministicBySeed(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	in := randomInstance(rng, 15, 3)
	a, _ := (SA{Iterations: 3000, Seed: 7}).Map(in)
	b, _ := (SA{Iterations: 3000, Seed: 7}).Map(in)
	if a.Makespan != b.Makespan {
		t.Errorf("same seed, different makespans: %g vs %g", a.Makespan, b.Makespan)
	}
}

func TestMakespanOfMatchesEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	in := randomInstance(rng, 10, 3)
	asg := randomAssignment(mustRunnable(in), rng)
	s, err := evaluate(in, "x", asg)
	if err != nil {
		t.Fatal(err)
	}
	if got := makespanOf(in, asg); math.Abs(got-s.Makespan) > 1e-12 {
		t.Errorf("makespanOf = %g, evaluate = %g", got, s.Makespan)
	}
}

func TestSortedByFitness(t *testing.T) {
	order := sortedByFitness([]float64{3, 1, 2})
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// bruteForceOptimum enumerates all assignments (only for tiny instances).
func bruteForceOptimum(in *Instance) float64 {
	n, m := in.Tasks(), in.Machines()
	best := math.Inf(1)
	asg := make([]int, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if mk := makespanOf(in, asg); mk < best {
				best = mk
			}
			return
		}
		for j := 0; j < m; j++ {
			if !math.IsInf(in.ETC.At(i, j), 1) {
				asg[i] = j
				rec(i + 1)
			}
		}
	}
	rec(0)
	return best
}

func mustRunnable(in *Instance) [][]int {
	r, err := runnableMachines(in)
	if err != nil {
		panic(err)
	}
	return r
}
