package experiments

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/etcmat"
	"repro/internal/gen"
	"repro/internal/stats"
)

// Ex10Independence demonstrates the central methodological claim of the
// paper (Sec. III): the column-only normalization of the prior work (ref
// [2]) leaves the affinity measure entangled with task difficulty spread,
// while the standard-form TMA is independent of both MPH and TDH.
//
// Protocol: hold the affinity core and MPH fixed, sweep TDH across its
// range, and track both affinity measures; then report the correlation of
// each measure with TDH over a random environment population. Expected
// shape: the legacy measure drifts with TDH (|corr| large), the
// standard-form TMA stays flat (|corr| near 0).
func Ex10Independence() ([]*Table, error) {
	rng := rand.New(rand.NewSource(108))

	sweep := &Table{
		ID:    "EX10",
		Title: "TDH sweep at fixed MPH=0.8 and fixed affinity core (10x5)",
		Notes: []string{
			"legacy = column-normalization-only affinity (the paper's ref [2]); TMA = this paper",
		},
		Header: []string{"TDH", "legacy affinity", "TMA (standard form)"},
	}
	for _, tdh := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0} {
		g, err := gen.Targeted(gen.Target{
			Tasks: 10, Machines: 5, MPH: 0.8, TDH: tdh, TMA: 0.3,
		}, rand.New(rand.NewSource(9)))
		if err != nil {
			return nil, err
		}
		legacy := core.TMALegacyColumnOnly(g.Env)
		sweep.Rows = append(sweep.Rows, []string{
			f2(tdh), f4(legacy), f4(g.Achieved.TMA),
		})
	}

	// Population correlations.
	var tdhs, legacies, tmas []float64
	for k := 0; k < 60; k++ {
		env, err := randomSpreadEnv(rng)
		if err != nil {
			return nil, err
		}
		p := core.Characterize(env)
		if p.TMAErr != nil {
			return nil, p.TMAErr
		}
		tdhs = append(tdhs, p.TDH)
		legacies = append(legacies, core.TMALegacyColumnOnly(env))
		tmas = append(tmas, p.TMA)
	}
	corr := &Table{
		ID:     "EX10",
		Title:  "Correlation with TDH over 60 random environments",
		Header: []string{"measure", "Pearson corr with TDH", "|Spearman| with TDH"},
		Rows: [][]string{
			{"legacy affinity", f4(stats.Pearson(tdhs, legacies)), f4(abs(stats.Spearman(tdhs, legacies)))},
			{"TMA (standard form)", f4(stats.Pearson(tdhs, tmas)), f4(abs(stats.Spearman(tdhs, tmas)))},
		},
	}
	return []*Table{sweep, corr}, nil
}

// randomSpreadEnv draws an environment whose affinity structure is fixed but
// whose task difficulty spread varies wildly, isolating the TDH axis.
func randomSpreadEnv(rng *rand.Rand) (*etcmat.Env, error) {
	g, err := gen.Targeted(gen.Target{
		Tasks: 10, Machines: 5,
		MPH: 0.5 + 0.4*rng.Float64(),
		TDH: 0.05 + 0.9*rng.Float64(),
		TMA: 0.3,
	}, rng)
	if err != nil {
		return nil, err
	}
	return g.Env, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
