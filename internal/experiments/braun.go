package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/parallel"
)

// Ex13BraunClasses maps the canonical twelve ETC classes of Braun et al.
// (the paper's ref [6]) into the paper's measure space. The taxonomy crosses
// three consistency classes with high/low task heterogeneity and high/low
// machine heterogeneity (range-based generation with R_task ∈ {3000, 100}
// and R_mach ∈ {100, 10} — the standard "hi/lo" settings).
//
// The measured table is revealing: consistency is by far the dominant TMA
// axis (and leaves TDH untouched, since per-row multisets are preserved);
// the machine range moves MPH and, secondarily, TMA; and the classic "hi/lo
// task heterogeneity" axis barely registers in TDH at T = 16 — with that
// many task types the mean-adjacent-ratio homogeneity saturates regardless
// of the total range. The paper's measures make visible a distinction the
// range parameters alone cannot: two classes with very different R_task are
// nearly the same environment.
func Ex13BraunClasses() ([]*Table, error) {
	t := &Table{
		ID:    "EX13",
		Title: "The twelve Braun et al. ETC classes in (MPH, TDH, TMA) space",
		Notes: []string{
			"range-based 16x8 matrices, averaged over 5 seeds per class",
			"hi/lo task: R_task = 3000/100; hi/lo machine: R_mach = 100/10",
		},
		Header: []string{"class", "MPH", "TDH", "TMA"},
	}
	type axis struct {
		name  string
		value float64
	}
	taskAxes := []axis{{"hi-task", 3000}, {"lo-task", 100}}
	machAxes := []axis{{"hi-mach", 100}, {"lo-mach", 10}}
	consistencies := []gen.Consistency{gen.Consistent, gen.SemiConsistent, gen.Inconsistent}
	const seeds = 5
	type class struct {
		c      gen.Consistency
		ta, ma axis
	}
	var classes []class
	for _, c := range consistencies {
		for _, ta := range taskAxes {
			for _, ma := range machAxes {
				classes = append(classes, class{c, ta, ma})
			}
		}
	}
	// Each of the twelve classes averages over the same five fixed seeds, so
	// the classes are fully independent trials: run them on the worker pool.
	// The per-seed RNGs are constructed inside each trial, so the table is
	// byte-identical to the sequential sweep.
	rows, err := parallel.Map(context.Background(), len(classes), 0,
		func(_ context.Context, i int) ([]string, error) {
			cl := classes[i]
			var mph, tdh, tma float64
			for s := int64(0); s < seeds; s++ {
				rng := rand.New(rand.NewSource(111 + s))
				env, err := gen.RangeBased(16, 8, cl.ta.value, cl.ma.value, rng)
				if err != nil {
					return nil, err
				}
				env, err = gen.WithConsistency(env, cl.c)
				if err != nil {
					return nil, err
				}
				p := core.Characterize(env)
				if p.TMAErr != nil {
					return nil, p.TMAErr
				}
				mph += p.MPH
				tdh += p.TDH
				tma += p.TMA
			}
			return []string{
				fmt.Sprintf("%s %s %s", cl.c, cl.ta.name, cl.ma.name),
				f4(mph / seeds), f4(tdh / seeds), f4(tma / seeds),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return []*Table{t}, nil
}
