package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/gen"
)

// Ex13BraunClasses maps the canonical twelve ETC classes of Braun et al.
// (the paper's ref [6]) into the paper's measure space. The taxonomy crosses
// three consistency classes with high/low task heterogeneity and high/low
// machine heterogeneity (range-based generation with R_task ∈ {3000, 100}
// and R_mach ∈ {100, 10} — the standard "hi/lo" settings).
//
// The measured table is revealing: consistency is by far the dominant TMA
// axis (and leaves TDH untouched, since per-row multisets are preserved);
// the machine range moves MPH and, secondarily, TMA; and the classic "hi/lo
// task heterogeneity" axis barely registers in TDH at T = 16 — with that
// many task types the mean-adjacent-ratio homogeneity saturates regardless
// of the total range. The paper's measures make visible a distinction the
// range parameters alone cannot: two classes with very different R_task are
// nearly the same environment.
func Ex13BraunClasses() ([]*Table, error) {
	t := &Table{
		ID:    "EX13",
		Title: "The twelve Braun et al. ETC classes in (MPH, TDH, TMA) space",
		Notes: []string{
			"range-based 16x8 matrices, averaged over 5 seeds per class",
			"hi/lo task: R_task = 3000/100; hi/lo machine: R_mach = 100/10",
		},
		Header: []string{"class", "MPH", "TDH", "TMA"},
	}
	type axis struct {
		name  string
		value float64
	}
	taskAxes := []axis{{"hi-task", 3000}, {"lo-task", 100}}
	machAxes := []axis{{"hi-mach", 100}, {"lo-mach", 10}}
	consistencies := []gen.Consistency{gen.Consistent, gen.SemiConsistent, gen.Inconsistent}
	const seeds = 5
	for _, c := range consistencies {
		for _, ta := range taskAxes {
			for _, ma := range machAxes {
				var mph, tdh, tma float64
				for s := int64(0); s < seeds; s++ {
					rng := rand.New(rand.NewSource(111 + s))
					env, err := gen.RangeBased(16, 8, ta.value, ma.value, rng)
					if err != nil {
						return nil, err
					}
					env, err = gen.WithConsistency(env, c)
					if err != nil {
						return nil, err
					}
					p := core.Characterize(env)
					if p.TMAErr != nil {
						return nil, p.TMAErr
					}
					mph += p.MPH
					tdh += p.TDH
					tma += p.TMA
				}
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("%s %s %s", c, ta.name, ma.name),
					f4(mph / seeds), f4(tdh / seeds), f4(tma / seeds),
				})
			}
		}
	}
	return []*Table{t}, nil
}
