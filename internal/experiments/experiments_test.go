package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// Every experiment must run cleanly and produce non-empty, rectangular,
// renderable tables.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s: no tables", e.ID)
			}
			for _, tb := range tables {
				if tb.Title == "" || len(tb.Header) == 0 || len(tb.Rows) == 0 {
					t.Errorf("%s: incomplete table %+v", e.ID, tb.Title)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Header) {
						t.Errorf("%s: ragged row %v vs header %v", e.ID, row, tb.Header)
					}
				}
				var buf bytes.Buffer
				if err := tb.Render(&buf); err != nil {
					t.Errorf("%s: render: %v", e.ID, err)
				}
				if !strings.Contains(buf.String(), tb.Title) {
					t.Errorf("%s: render lost the title", e.ID)
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig2"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown ID accepted")
	}
}

// Figure 2's measured cells must match the paper values embedded in the same
// cells (format "measured (paper)").
func TestFig2CellsAgreeWithPaper(t *testing.T) {
	tables, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		for _, cell := range row[1:] {
			parts := strings.SplitN(cell, " (", 2)
			if len(parts) != 2 {
				t.Fatalf("cell %q not in 'measured (paper)' form", cell)
			}
			measured, err1 := strconv.ParseFloat(parts[0], 64)
			paper, err2 := strconv.ParseFloat(strings.TrimSuffix(parts[1], ")"), 64)
			if err1 != nil || err2 != nil {
				t.Fatalf("cell %q unparsable", cell)
			}
			// MPH(env4) = 0.625 exactly: we print the round-half-even 0.62
			// while the paper prints 0.63, so allow one hundredth.
			if diff := measured - paper; diff > 0.0101 || diff < -0.0101 {
				t.Errorf("row %v: measured %.4f vs paper %.4f", row[0], measured, paper)
			}
		}
	}
}

// EX1's relative makespans must be >= 1 with at least one 1.00 per row (the
// best heuristic) — a consistency check on the normalization.
func TestEx1Normalization(t *testing.T) {
	tables, err := Ex1Heuristics()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		sawBest := false
		for _, cell := range row[2:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("cell %q unparsable", cell)
			}
			if v < 1-1e-9 {
				t.Errorf("relative makespan %g < 1", v)
			}
			if v <= 1.005 {
				sawBest = true
			}
		}
		if !sawBest {
			t.Errorf("row %v has no best heuristic at 1.00", row[:2])
		}
	}
}

// EX3 must achieve its MPH/TDH targets essentially exactly and TMA within
// the generator tolerance.
func TestEx3Achievement(t *testing.T) {
	tables, err := Ex3Generator()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		req := make([]float64, 3)
		ach := make([]float64, 3)
		for k := 0; k < 3; k++ {
			req[k], _ = strconv.ParseFloat(row[k], 64)
			var err error
			ach[k], err = strconv.ParseFloat(row[k+3], 64)
			if err != nil {
				t.Fatalf("cell %q unparsable", row[k+3])
			}
		}
		if d := ach[0] - req[0]; d > 1e-3 || d < -1e-3 {
			t.Errorf("MPH requested %.2f achieved %.4f", req[0], ach[0])
		}
		if d := ach[1] - req[1]; d > 1e-3 || d < -1e-3 {
			t.Errorf("TDH requested %.2f achieved %.4f", req[1], ach[1])
		}
		if d := ach[2] - req[2]; d > 5e-3 || d < -5e-3 {
			t.Errorf("TMA requested %.2f achieved %.4f", req[2], ach[2])
		}
	}
}

// EX6's claim: the measures predict scheduling performance. The held-out R²
// must show genuine signal and MPH must be the dominant (negative) driver.
func TestEx6PredictiveSignal(t *testing.T) {
	tables, err := Ex6Prediction()
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, row := range tables[0].Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("cell %q unparsable", row[1])
		}
		vals[row[0]] = v
	}
	if vals["R^2 (held out)"] < 0.5 {
		t.Errorf("held-out R^2 = %.3f, want real predictive signal (>= 0.5)", vals["R^2 (held out)"])
	}
	if vals["corr(MPH, response)"] > -0.5 {
		t.Errorf("corr(MPH, response) = %.3f, want strongly negative", vals["corr(MPH, response)"])
	}
	if vals["coef MPH"] >= 0 {
		t.Errorf("coef MPH = %.3f, want negative (more homogeneity, less slowdown)", vals["coef MPH"])
	}
}

// EX7's claim: TMA orders the consistency classes while TDH stays fixed
// (per-row multisets are unchanged).
func TestEx7ConsistencyOrdering(t *testing.T) {
	tables, err := Ex7Consistency()
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("want 3 classes, got %d", len(rows))
	}
	tma := make([]float64, 3)
	tdh := make([]float64, 3)
	for i, row := range rows {
		var err1, err2 error
		tdh[i], err1 = strconv.ParseFloat(row[2], 64)
		tma[i], err2 = strconv.ParseFloat(row[3], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("row %v unparsable", row)
		}
	}
	if !(tma[0] < tma[1] && tma[1] < tma[2]) {
		t.Errorf("TMA not increasing across consistent < semi < inconsistent: %v", tma)
	}
	if tdh[0] != tdh[1] || tdh[1] != tdh[2] {
		t.Errorf("TDH must be identical across classes (same row multisets): %v", tdh)
	}
}

// EX8's regime claims: MET herd-crashes in the homogeneous row but ties the
// best policy in the specialized-equals row; MCT is at 1.00 everywhere.
func TestEx8RegimeFlip(t *testing.T) {
	tables, err := Ex8Dynamic()
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	col := map[string]int{}
	for j, h := range tb.Header {
		col[h] = j
	}
	get := func(row []string, name string) float64 {
		v, err := strconv.ParseFloat(row[col[name]], 64)
		if err != nil {
			t.Fatalf("cell %q unparsable", row[col[name]])
		}
		return v
	}
	for _, row := range tb.Rows {
		if get(row, "MCT") > 1.2 {
			t.Errorf("%s: MCT relative response %.2f, want near 1", row[0], get(row, "MCT"))
		}
	}
	homog, special := tb.Rows[0], tb.Rows[3]
	if get(homog, "MET") < 5 {
		t.Errorf("homogeneous row: MET %.2f, want a collapse", get(homog, "MET"))
	}
	if get(special, "MET") > 1.2 {
		t.Errorf("specialized-equals row: MET %.2f, want near-optimal", get(special, "MET"))
	}
	if get(special, "OLB") < 5 {
		t.Errorf("specialized-equals row: OLB %.2f, want a collapse", get(special, "OLB"))
	}
}

// EX9: task weights must move TDH, machine weights must move MPH, and both
// rows must differ from the uniform baseline.
func TestEx9WeightEffects(t *testing.T) {
	tables, err := Ex9Weights()
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("want 3 weightings, got %d", len(rows))
	}
	parse := func(r []string, j int) float64 {
		v, err := strconv.ParseFloat(r[j], 64)
		if err != nil {
			t.Fatalf("cell %q unparsable", r[j])
		}
		return v
	}
	baseMPH, baseTDH := parse(rows[0], 1), parse(rows[0], 2)
	if parse(rows[1], 2) == baseTDH {
		t.Error("task-frequency weights did not move TDH")
	}
	if parse(rows[2], 1) == baseMPH {
		t.Error("machine weights did not move MPH")
	}
}

// Every experiment must be deterministic: two runs render byte-identically.
// This guards against accidental use of global RNG or map-iteration order in
// any experiment.
func TestExperimentsDeterministic(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			render := func() string {
				tables, err := e.Run()
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				for _, tb := range tables {
					if err := tb.Render(&buf); err != nil {
						t.Fatal(err)
					}
				}
				return buf.String()
			}
			if render() != render() {
				t.Errorf("%s output is not deterministic", e.ID)
			}
		})
	}
}

// EX10's claim (the paper's methodological core): the legacy column-only
// affinity tracks TDH almost perfectly while the standard-form TMA is flat.
func TestEx10IndependenceContrast(t *testing.T) {
	tables, err := Ex10Independence()
	if err != nil {
		t.Fatal(err)
	}
	// Sweep table: TMA column constant, legacy column strictly increasing
	// over the first few rows.
	sweep := tables[0]
	var tmaVals, legacyVals []float64
	for _, row := range sweep.Rows {
		l, err1 := strconv.ParseFloat(row[1], 64)
		v, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("row %v unparsable", row)
		}
		legacyVals = append(legacyVals, l)
		tmaVals = append(tmaVals, v)
	}
	for i := 1; i < len(tmaVals); i++ {
		if diff := tmaVals[i] - tmaVals[0]; diff > 0.01 || diff < -0.01 {
			t.Errorf("standard-form TMA drifted across the TDH sweep: %v", tmaVals)
			break
		}
	}
	if !(legacyVals[0] < legacyVals[2] && legacyVals[2] < legacyVals[4]) {
		t.Errorf("legacy affinity did not grow with TDH: %v", legacyVals)
	}
	// Correlation table.
	corr := tables[1]
	legacyCorr, _ := strconv.ParseFloat(corr.Rows[0][1], 64)
	tmaCorr, _ := strconv.ParseFloat(corr.Rows[1][1], 64)
	if legacyCorr < 0.8 {
		t.Errorf("legacy correlation with TDH = %.3f, want the strong dependence the paper describes", legacyCorr)
	}
	if tmaCorr > 0.3 || tmaCorr < -0.3 {
		t.Errorf("TMA correlation with TDH = %.3f, want near zero", tmaCorr)
	}
}

// EX11's crossover: batch/immediate ratio must be near 1 at the lightest
// load and clearly below 1 at the heaviest.
func TestEx11Crossover(t *testing.T) {
	tables, err := Ex11BatchMode()
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	first, err1 := strconv.ParseFloat(rows[0][3], 64)
	last, err2 := strconv.ParseFloat(rows[len(rows)-1][3], 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("ratio cells unparsable: %v", rows)
	}
	if first < 0.9 || first > 1.3 {
		t.Errorf("light-load batch/immediate = %.2f, want near 1", first)
	}
	if last > 0.85 {
		t.Errorf("heavy-load batch/immediate = %.2f, want a clear batch win", last)
	}
}

// EX13's structure: within every (task, machine) cell, TMA orders the
// consistency classes; within every (consistency, task) cell, the low
// machine range has higher MPH.
func TestEx13BraunStructure(t *testing.T) {
	tables, err := Ex13BraunClasses()
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string][3]float64{} // class -> MPH, TDH, TMA
	for _, row := range tables[0].Rows {
		var v [3]float64
		for k := 0; k < 3; k++ {
			f, err := strconv.ParseFloat(row[k+1], 64)
			if err != nil {
				t.Fatalf("row %v unparsable", row)
			}
			v[k] = f
		}
		vals[row[0]] = v
	}
	for _, task := range []string{"hi-task", "lo-task"} {
		for _, mach := range []string{"hi-mach", "lo-mach"} {
			c := vals["consistent "+task+" "+mach][2]
			s := vals["semi-consistent "+task+" "+mach][2]
			i := vals["inconsistent "+task+" "+mach][2]
			if !(c < s && s < i) {
				t.Errorf("%s %s: TMA not ordered by consistency: %g %g %g", task, mach, c, s, i)
			}
		}
	}
	for _, cons := range []string{"consistent", "semi-consistent", "inconsistent"} {
		for _, task := range []string{"hi-task", "lo-task"} {
			hi := vals[cons+" "+task+" hi-mach"][0]
			lo := vals[cons+" "+task+" lo-mach"][0]
			if !(lo > hi) {
				t.Errorf("%s %s: MPH(lo-mach) %g not above MPH(hi-mach) %g", cons, task, lo, hi)
			}
		}
	}
}

func TestRenderMarkdown(t *testing.T) {
	tb := &Table{
		ID:     "X",
		Title:  "demo",
		Notes:  []string{"a note"},
		Header: []string{"k", "v"},
		Rows:   [][]string{{"pipe|cell", "1"}},
	}
	var buf bytes.Buffer
	if err := tb.RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"**X: demo**", "*a note*", "| k | v |", "| --- | --- |", `pipe\|cell`} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tb := &Table{
		ID:     "X",
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"wide-cell-content", "1"}},
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3+1 { // title + header + separator + row
		t.Errorf("got %d lines:\n%s", len(lines), buf.String())
	}
}
