package experiments

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// renderResults renders every table of every result to one byte stream, so
// two engine runs can be compared for exact equality.
func renderResults(t *testing.T, results []Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		for _, tb := range r.Tables {
			if err := tb.Render(&buf); err != nil {
				t.Fatalf("%s: render: %v", r.ID, err)
			}
		}
	}
	return buf.Bytes()
}

// TestRunAllDeterministic is the acceptance check for the parallel engine:
// the full experiment suite rendered from a concurrent run must be
// byte-identical to the sequential run.
func TestRunAllDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite is slow; skipped with -short")
	}
	exps := All()
	seq := renderResults(t, RunAll(context.Background(), exps, 1))
	for _, workers := range []int{2, 4, 0} {
		par := renderResults(t, RunAll(context.Background(), exps, workers))
		if !bytes.Equal(seq, par) {
			t.Fatalf("workers=%d: concurrent run differs from sequential run", workers)
		}
	}
}

func TestRunAllOrderAndIDs(t *testing.T) {
	exps := []Experiment{
		{ID: "A", Run: func() ([]*Table, error) { return []*Table{{ID: "A"}}, nil }},
		{ID: "B", Run: func() ([]*Table, error) { return nil, errors.New("boom") }},
		{ID: "C", Run: func() ([]*Table, error) { return []*Table{{ID: "C"}}, nil }},
	}
	results := RunAll(context.Background(), exps, 3)
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for i, r := range results {
		if r.ID != exps[i].ID {
			t.Errorf("result %d: ID = %q, want %q (order must match input)", i, r.ID, exps[i].ID)
		}
	}
	if results[1].Err == nil || results[1].Err.Error() != "boom" {
		t.Errorf("failing experiment: Err = %v, want boom", results[1].Err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("a failing experiment must not poison its neighbors: %v, %v",
			results[0].Err, results[2].Err)
	}
}

func TestRunAllCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	exps := []Experiment{
		{ID: "A", Run: func() ([]*Table, error) { return []*Table{}, nil }},
		{ID: "B", Run: func() ([]*Table, error) { return []*Table{}, nil }},
	}
	results := RunAll(ctx, exps, 2)
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	for i, r := range results {
		if r.ID != exps[i].ID {
			t.Errorf("result %d: ID = %q, want %q even when skipped", i, r.ID, exps[i].ID)
		}
		if r.Err == nil && r.Tables == nil {
			t.Errorf("result %d: a skipped experiment must carry the context error", i)
		}
	}
}

// TestRunAllPooledWorkspaceDeterminism is the fast (not -short-gated)
// workspace-leak check: the spectral and Sinkhorn scratch pools behind the
// measures are shared across goroutines, and a leak of one trial's state into
// another shows up as a rendered-byte difference between worker counts. EX3
// and EX13 are the sweep experiments that hammer those pools hardest while
// staying quick enough for every -race run.
func TestRunAllPooledWorkspaceDeterminism(t *testing.T) {
	var subset []Experiment
	for _, id := range []string{"EX3", "EX13"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		subset = append(subset, e)
	}
	seq := renderResults(t, RunAll(context.Background(), subset, 1))
	for _, workers := range []int{2, 4, 0} {
		par := renderResults(t, RunAll(context.Background(), subset, workers))
		if !bytes.Equal(seq, par) {
			t.Fatalf("workers=%d: pooled-workspace run differs from sequential run", workers)
		}
	}
}
