package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/dynsim"
	"repro/internal/etcmat"
	"repro/internal/gen"
	"repro/internal/spec"
)

// Ex8Dynamic runs the dynamic (online-arrival) counterpart of EX1: tasks
// arrive as a Poisson stream and are mapped on arrival by immediate-mode
// policies. The table reports mean response time normalized per row to the
// best policy. Expected shape, mirroring the static study: MET herd-crashes
// whenever one machine is globally fastest (any low-MPH row) but becomes
// competitive exactly in the specialized-equals corner — high MPH *and* high
// TMA, where "fastest machine per task" is a partition, not a pile-up; MCT
// tracks the best policy everywhere; OLB suffers once affinity or speed
// spread makes placement matter.
func Ex8Dynamic() ([]*Table, error) {
	rng := rand.New(rand.NewSource(107))
	policies := dynsim.Policies()
	t := &Table{
		ID:    "EX8",
		Title: "Dynamic mapping: mean response time (policy / best) under Poisson arrivals",
		Notes: []string{
			"600 arrivals; arrival rate set to ~70% of the environment's aggregate service capacity",
		},
	}
	t.Header = []string{"environment"}
	for _, p := range policies {
		t.Header = append(t.Header, p.Name())
	}

	cases := []struct {
		name          string
		mph, tdh, tma float64
	}{
		{"homogeneous (MPH .95, TMA .02)", 0.95, 0.9, 0.02},
		{"mixed speeds (MPH .45, TMA .05)", 0.45, 0.9, 0.05},
		{"accelerators (MPH .45, TMA .55)", 0.45, 0.8, 0.55},
		{"specialized equals (MPH .95, TMA .75)", 0.95, 0.9, 0.75},
	}
	for _, c := range cases {
		g, err := gen.Targeted(gen.Target{Tasks: 10, Machines: 6, MPH: c.mph, TDH: c.tdh, TMA: c.tma}, rng)
		if err != nil {
			return nil, err
		}
		row, err := dynamicRow(c.name, g.Env, policies, rng)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	// Also the SPEC-derived environment for grounding.
	row, err := dynamicRow("SPEC CINT", spec.CINT2006Rate(), policies, rng)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, row)
	return []*Table{t}, nil
}

// Ex11BatchMode contrasts immediate-mode MCT with batch-mode Min-Min across
// load levels on the SPEC CINT environment — the classic dynamic-mapping
// result: immediate mode wins under light load (no mapping latency), batch
// mode catches up and overtakes as the backlog grows, because pooled
// arrivals can be placed jointly.
func Ex11BatchMode() ([]*Table, error) {
	env := spec.CINT2006Rate()
	rng := rand.New(rand.NewSource(109))
	capacity := env.ECS().Sum() / float64(env.Tasks())
	t := &Table{
		ID:    "EX11",
		Title: "Immediate (MCT) vs batch (Min-Min) dynamic mapping on SPEC CINT",
		Notes: []string{
			"500 Poisson arrivals; batch mapping event every 200 s",
			"values are mean response times in seconds",
		},
		Header: []string{"load (frac of capacity)", "immediate MCT", "batch Min-Min", "batch/immediate"},
	}
	for _, load := range []float64{0.2, 0.5, 0.8, 1.1} {
		w, err := dynsim.PoissonWorkload(env, 500, load*capacity, rng)
		if err != nil {
			return nil, err
		}
		imm, err := dynsim.Simulate(env, w, dynsim.MCT{}, rand.New(rand.NewSource(12)))
		if err != nil {
			return nil, err
		}
		batch, err := dynsim.SimulateBatch(env, w, 200, rand.New(rand.NewSource(12)))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			f2(load),
			fmt.Sprintf("%.0f", imm.MeanResponse),
			fmt.Sprintf("%.0f", batch.MeanResponse),
			f2(batch.MeanResponse / imm.MeanResponse),
		})
	}
	return []*Table{t}, nil
}

func dynamicRow(name string, env *etcmat.Env, policies []dynsim.Policy, rng *rand.Rand) ([]string, error) {
	// Aggregate service rate: machines in parallel, each at the mean speed
	// over task types; drive the system at 70% of that.
	ecs := env.ECS()
	rate := 0.7 * ecs.Sum() / float64(env.Tasks())
	w, err := dynsim.PoissonWorkload(env, 600, rate, rng)
	if err != nil {
		return nil, err
	}
	responses := make([]float64, len(policies))
	best := 0.0
	for i, p := range policies {
		res, err := dynsim.Simulate(env, w, p, rand.New(rand.NewSource(55)))
		if err != nil {
			return nil, err
		}
		responses[i] = res.MeanResponse
		if i == 0 || res.MeanResponse < best {
			best = res.MeanResponse
		}
	}
	row := []string{name}
	for _, r := range responses {
		row = append(row, fmt.Sprintf("%.2f", r/best))
	}
	return row, nil
}
