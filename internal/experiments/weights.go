package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/etcmat"
	"repro/internal/spec"
)

// Ex9Weights demonstrates the paper's weighting factors (Sec. II-C): w_t(i)
// can encode "the number of times that a task type is executed" and w_m(j)
// machine attributes such as a security level. On the CINT environment we
// compare three weightings:
//
//   - uniform (the baseline of Fig. 6);
//   - a frequency profile where short interactive task types dominate the
//     mix (heavier weight on the three fastest task types);
//   - a restricted-machines profile that down-weights two machines (e.g.
//     lower security clearance) without removing them.
//
// The measures move exactly as Eqs. 4 and 6 dictate: task weighting reshapes
// TDH (difficulty is mix-dependent), machine weighting reshapes MPH, and TMA
// responds only insofar as the weighted matrix's affinity structure changes.
func Ex9Weights() ([]*Table, error) {
	base := spec.CINT2006Rate()
	t := &Table{
		ID:    "EX9",
		Title: "Weighting factors (Eqs. 4/6) on SPEC CINT2006Rate",
		Notes: []string{
			"task-frequency weights: 5x on the three least difficult task types",
			"machine weights: 0.25x on machines m1 and m2",
		},
		Header: []string{"weighting", "MPH", "TDH", "TMA"},
	}

	addRow := func(name string, env *etcmat.Env) error {
		p := core.Characterize(env)
		if p.TMAErr != nil {
			return fmt.Errorf("%s: %w", name, p.TMAErr)
		}
		t.Rows = append(t.Rows, []string{name, f4(p.MPH), f4(p.TDH), f4(p.TMA)})
		return nil
	}

	if err := addRow("uniform (Fig. 6 baseline)", base); err != nil {
		return nil, err
	}

	// Frequency profile: 5x weight on the three easiest task types.
	td := core.TaskDifficulties(base)
	taskW := make([]float64, base.Tasks())
	for i := range taskW {
		taskW[i] = 1
	}
	for k := 0; k < 3; k++ {
		// The easiest task types have the largest difficulty row sums.
		maxI := 0
		for i, v := range td {
			if v > td[maxI] {
				maxI = i
			}
		}
		taskW[maxI] = 5
		td[maxI] = -1
	}
	// The reweighted variants are nearby points in weight space, so their
	// standardizations are warm-started from the baseline's scaling vectors
	// (the uniform-weight row above left them memoized on base).
	freq, err := base.WithWeights(taskW, nil)
	if err != nil {
		return nil, err
	}
	freq = freq.WithStandardFormSeed(base.StandardFormSeed())
	if err := addRow("task frequency 5x on easy types", freq); err != nil {
		return nil, err
	}

	machW := []float64{0.25, 0.25, 1, 1, 1}
	restricted, err := base.WithWeights(nil, machW)
	if err != nil {
		return nil, err
	}
	restricted = restricted.WithStandardFormSeed(base.StandardFormSeed())
	if err := addRow("machines m1,m2 down-weighted 4x", restricted); err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}
