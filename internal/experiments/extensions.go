package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/parallel"
	"repro/internal/sched"
	"repro/internal/spec"
)

// Ex1Heuristics is the paper's "select heuristics by heterogeneity"
// application (intro, ref [3]): sweep environments across the TMA and MPH
// ranges, run the full mapping-heuristic suite on a fixed workload, and
// report each heuristic's makespan normalized to the best heuristic for that
// environment. The qualitative shape to expect: MET collapses as machine
// heterogeneity grows but recovers competitiveness when affinity (TMA) is
// high (tasks genuinely prefer different machines), while Min-Min/Sufferage
// stay near the front everywhere.
func Ex1Heuristics() ([]*Table, error) {
	heuristics := sched.All()
	t := &Table{
		ID:    "EX1",
		Title: "Relative makespan (heuristic / best) across the heterogeneity space",
		Notes: []string{
			"environments from the targeted generator: 12 task types x 6 machines, 8 instances per type",
			"TDH fixed at 0.8; rows sweep (MPH, TMA)",
		},
	}
	t.Header = []string{"MPH", "TMA"}
	for _, h := range heuristics {
		t.Header = append(t.Header, h.Name())
	}
	type cell struct{ mph, tma float64 }
	var cells []cell
	for _, mph := range []float64{0.9, 0.5, 0.2} {
		for _, tma := range []float64{0.0, 0.3, 0.6} {
			cells = append(cells, cell{mph, tma})
		}
	}
	// Each (MPH, TMA) cell is an independent generate-and-schedule trial, so
	// the sweep runs on the worker pool with a per-cell derived RNG; results
	// come back in grid order and are identical at any worker count.
	rows, err := parallel.MapSeeded(context.Background(), len(cells), 0, 101,
		func(_ context.Context, i int, rng *rand.Rand) ([]string, error) {
			c := cells[i]
			g, err := gen.Targeted(gen.Target{
				Tasks: 12, Machines: 6, MPH: c.mph, TDH: 0.8, TMA: c.tma,
			}, rng)
			if err != nil {
				return nil, err
			}
			in, err := sched.UniformWorkload(g.Env, 8, rng)
			if err != nil {
				return nil, err
			}
			schedules, err := sched.RunAll(in, heuristics)
			if err != nil {
				return nil, err
			}
			best := schedules[0].Makespan
			for _, s := range schedules[1:] {
				if s.Makespan < best {
					best = s.Makespan
				}
			}
			row := []string{f2(c.mph), f2(c.tma)}
			for _, s := range schedules {
				row = append(row, f2(s.Makespan/best))
			}
			return row, nil
		})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return []*Table{t}, nil
}

// Ex2WhatIf is the paper's what-if application (intro): quantify how each
// measure moves when a task type or machine is removed from the CINT
// environment — exactly the "effect of adding/removing task types or
// machines" study the measures are motivated by.
func Ex2WhatIf() ([]*Table, error) {
	env := spec.CINT2006Rate()
	base, deltas := core.LeaveOneOut(env)
	if base.TMAErr != nil {
		return nil, base.TMAErr
	}
	t := &Table{
		ID:    "EX2",
		Title: "What-if: leave-one-out deltas on SPEC CINT2006Rate",
		Notes: []string{
			fmt.Sprintf("baseline: MPH=%s TDH=%s TMA=%s", f4(base.MPH), f4(base.TDH), f4(base.TMA)),
			"task rows limited to the extreme-difficulty task types",
		},
		Header: []string{"removed", "MPH", "dMPH", "TDH", "dTDH", "TMA", "dTMA"},
	}
	// Task removals: report the extreme task types only (least and most
	// difficult) to keep the table readable.
	td := core.TaskDifficulties(env)
	minI, maxI := 0, 0
	for i, v := range td {
		if v < td[minI] {
			minI = i
		}
		if v > td[maxI] {
			maxI = i
		}
	}
	for _, d := range deltas {
		if d.Err != nil {
			return nil, fmt.Errorf("%s %s: %w", d.Kind, d.Name, d.Err)
		}
		if d.Kind == "task" && d.Index != minI && d.Index != maxI {
			continue
		}
		t.Rows = append(t.Rows, []string{
			d.Kind + " " + d.Name,
			f4(d.MPH), fmt.Sprintf("%+.4f", d.DMPH),
			f4(d.TDH), fmt.Sprintf("%+.4f", d.DTDH),
			f4(d.TMA), fmt.Sprintf("%+.4f", d.DTMA),
		})
	}
	return []*Table{t}, nil
}

// Ex3Generator is the paper's generation application (intro, ref [2]):
// request a grid of (MPH, TDH, TMA) targets from the targeted generator and
// report what was achieved — demonstrating that environments spanning the
// entire heterogeneity range can be produced, with the three measures moving
// independently.
func Ex3Generator() ([]*Table, error) {
	t := &Table{
		ID:     "EX3",
		Title:  "Targeted generator: requested vs achieved (10 task types x 5 machines)",
		Header: []string{"req MPH", "req TDH", "req TMA", "ach MPH", "ach TDH", "ach TMA"},
	}
	type req struct{ mph, tdh, tma float64 }
	var reqs []req
	for _, mph := range []float64{0.2, 0.6, 0.95} {
		for _, tdh := range []float64{0.3, 0.9} {
			for _, tma := range []float64{0.0, 0.25, 0.5} {
				reqs = append(reqs, req{mph, tdh, tma})
			}
		}
	}
	// The 18 target cells are independent generator invocations; fan them out
	// with per-cell derived RNGs so the table is reproducible at any worker
	// count.
	rows, err := parallel.MapSeeded(context.Background(), len(reqs), 0, 102,
		func(_ context.Context, i int, rng *rand.Rand) ([]string, error) {
			r := reqs[i]
			g, err := gen.Targeted(gen.Target{
				Tasks: 10, Machines: 5, MPH: r.mph, TDH: r.tdh, TMA: r.tma,
			}, rng)
			if err != nil {
				return nil, err
			}
			p := g.Achieved
			return []string{
				f2(r.mph), f2(r.tdh), f2(r.tma), f4(p.MPH), f4(p.TDH), f4(p.TMA),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return []*Table{t}, nil
}
