package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/etcmat"
	"repro/internal/gen"
	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Ex6Prediction exercises the paper's "predicting the performance of HC
// environments" application (intro, ref [9]): across a population of
// generated environments, regress a scheduling-performance response on the
// three heterogeneity measures and report in-sample and held-out R². The
// response is the Min-Min makespan normalized by the makespan lower bound —
// a dimensionless "how much does heterogeneity hurt" signal. The shape to
// expect: the measures carry real predictive signal (R² well above zero),
// with MPH the dominant regressor.
func Ex6Prediction() ([]*Table, error) {
	type sample struct {
		mph, tdh, tma, y float64
	}
	// Population: a grid from the targeted generator plus range-based draws,
	// for feature diversity. Each sample is an independent generate-and-
	// schedule trial, so the population is built on the worker pool with a
	// per-sample derived RNG — deterministic at any worker count.
	type draw struct {
		targeted      bool
		mph, tdh, tma float64
	}
	var draws []draw
	for _, mph := range []float64{0.2, 0.4, 0.6, 0.8, 0.95} {
		for _, tdh := range []float64{0.3, 0.6, 0.9} {
			for _, tma := range []float64{0.0, 0.2, 0.4} {
				draws = append(draws, draw{targeted: true, mph: mph, tdh: tdh, tma: tma})
			}
		}
	}
	for i := 0; i < 30; i++ {
		draws = append(draws, draw{targeted: false})
	}
	samples, err := parallel.MapSeeded(context.Background(), len(draws), 0, 105,
		func(_ context.Context, i int, rng *rand.Rand) (sample, error) {
			d := draws[i]
			var env *etcmat.Env
			var p *core.Profile
			if d.targeted {
				g, err := gen.Targeted(gen.Target{Tasks: 10, Machines: 5, MPH: d.mph, TDH: d.tdh, TMA: d.tma}, rng)
				if err != nil {
					return sample{}, err
				}
				env, p = g.Env, g.Achieved
			} else {
				e, err := gen.RangeBased(10, 5, 2+rng.Float64()*500, 2+rng.Float64()*50, rng)
				if err != nil {
					return sample{}, err
				}
				env = e
				p = core.Characterize(env)
				if p.TMAErr != nil {
					return sample{}, p.TMAErr
				}
			}
			y, err := respond(env, rng)
			if err != nil {
				return sample{}, err
			}
			return sample{p.MPH, p.TDH, p.TMA, y}, nil
		})
	if err != nil {
		return nil, err
	}

	// Shuffle before splitting: the grid enumeration order is strongly
	// structured (the TMA values cycle with period 3), so a strided split
	// without shuffling would hold out an entire TMA level. The shuffle RNG
	// stream is derived past the per-sample streams so it never overlaps them.
	rng := rand.New(rand.NewSource(parallel.DeriveSeed(105, len(draws))))
	rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
	// Split deterministically: every third sample is held out.
	var trainX, testX [][]float64
	var trainY, testY []float64
	for i, s := range samples {
		row := []float64{1, s.mph, s.tdh, s.tma}
		if i%3 == 2 {
			testX = append(testX, row)
			testY = append(testY, s.y)
		} else {
			trainX = append(trainX, row)
			trainY = append(trainY, s.y)
		}
	}
	beta, err := linalg.LeastSquares(matrix.FromRows(trainX), trainY)
	if err != nil {
		return nil, err
	}
	r2Train := rSquared(trainX, trainY, beta)
	r2Test := rSquared(testX, testY, beta)

	corr := func(f func(sample) float64) float64 {
		xs := make([]float64, len(samples))
		ys := make([]float64, len(samples))
		for i, s := range samples {
			xs[i] = f(s)
			ys[i] = s.y
		}
		return stats.Pearson(xs, ys)
	}
	t := &Table{
		ID:    "EX6",
		Title: "Predicting normalized Min-Min makespan from (MPH, TDH, TMA)",
		Notes: []string{
			fmt.Sprintf("population: %d environments (targeted grid + range-based draws); response = log(makespan / lower bound)", len(samples)),
		},
		Header: []string{"quantity", "value"},
		Rows: [][]string{
			{"intercept", f4(beta[0])},
			{"coef MPH", f4(beta[1])},
			{"coef TDH", f4(beta[2])},
			{"coef TMA", f4(beta[3])},
			{"R^2 (train)", f4(r2Train)},
			{"R^2 (held out)", f4(r2Test)},
			{"corr(MPH, response)", f4(corr(func(s sample) float64 { return s.mph }))},
			{"corr(TMA, response)", f4(corr(func(s sample) float64 { return s.tma }))},
		},
	}
	return []*Table{t}, nil
}

// respond computes the response variable: the log of Min-Min makespan over
// the lower bound on a fixed-size workload. The log keeps the response
// linear in the measures — the raw ratio explodes as MPH falls.
func respond(env *etcmat.Env, rng *rand.Rand) (float64, error) {
	// Average over a few workload shuffles so arrival-order noise does not
	// drown the environment signal.
	const reps = 3
	sum := 0.0
	for r := 0; r < reps; r++ {
		in, err := sched.UniformWorkload(env, 6, rng)
		if err != nil {
			return 0, err
		}
		s, err := (sched.MinMin{}).Map(in)
		if err != nil {
			return 0, err
		}
		sum += math.Log(s.Makespan / sched.LowerBound(in))
	}
	return sum / reps, nil
}

func rSquared(x [][]float64, y []float64, beta []float64) float64 {
	mean := stats.Mean(y)
	var ssRes, ssTot float64
	for i, row := range x {
		pred := 0.0
		for j, v := range row {
			pred += beta[j] * v
		}
		d := y[i] - pred
		ssRes += d * d
		t := y[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// Ex7Consistency ties the classic ETC consistency taxonomy (Braun et al.,
// the paper's ref [6]) to the paper's measures: the same value distribution
// rearranged into consistent / semi-consistent / inconsistent form moves TMA
// from near zero upward while leaving the marginal distributions untouched —
// TMA captures exactly the structure the taxonomy names.
func Ex7Consistency() ([]*Table, error) {
	rng := rand.New(rand.NewSource(106))
	t := &Table{
		ID:    "EX7",
		Title: "ETC consistency classes vs the measures (range-based, 16x8, R_task=100, R_mach=20)",
		Notes: []string{
			"per-row value multisets are identical across classes; only machine placement differs",
		},
		Header: []string{"class", "MPH", "TDH", "TMA", "mean col angle"},
	}
	base, err := gen.RangeBased(16, 8, 100, 20, rng)
	if err != nil {
		return nil, err
	}
	for _, c := range []gen.Consistency{gen.Consistent, gen.SemiConsistent, gen.Inconsistent} {
		env, err := gen.WithConsistency(base, c)
		if err != nil {
			return nil, err
		}
		p := core.Characterize(env)
		if p.TMAErr != nil {
			return nil, p.TMAErr
		}
		t.Rows = append(t.Rows, []string{
			c.String(), f4(p.MPH), f4(p.TDH), f4(p.TMA), f4(core.MeanColumnAngle(env)),
		})
	}
	return []*Table{t}, nil
}
