package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/etcmat"
	"repro/internal/gen"
	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/sinkhorn"
	"repro/internal/spec"
)

// Ex4Ablation validates the design choices DESIGN.md calls out, on the
// paper's own datasets:
//
//  1. the direct rectangular Eq. 9 iteration vs the Appendix A tiling
//     construction (both must reach the same standard form);
//  2. the Golub–Reinsch SVD vs the one-sided Jacobi SVD (both must report
//     the same singular values, hence the same TMA);
//  3. column-then-row normalization (the paper's Eq. 9 order) vs
//     row-then-column (the standard form must be identical, iteration counts
//     may differ by at most one);
//  4. the Sec. II-E geometric view: TMA vs the mean pairwise column angle.
func Ex4Ablation() ([]*Table, error) {
	t := &Table{
		ID:    "EX4",
		Title: "Ablations: implementation choices do not move the measures",
		Notes: []string{
			"agreement columns are max abs differences; 'iters' compares normalization rounds",
		},
		Header: []string{"dataset", "direct vs tiling", "GR vs Jacobi sv", "col-first vs row-first", "iters (c/r)", "TMA", "mean col angle (rad)"},
	}
	for _, c := range []struct {
		name string
		env  *etcmat.Env
	}{
		{"CINT", spec.CINT2006Rate()},
		{"CFP", spec.CFP2006Rate()},
		{"random 10x7", randomPositiveEnv(10, 7, 7)},
	} {
		w := c.env.WeightedECS()
		direct, err := sinkhorn.Standardize(w)
		if err != nil {
			return nil, err
		}
		tiled, err := sinkhorn.StandardizeViaTiling(w)
		if err != nil {
			return nil, err
		}
		dTiling := matrix.Sub(direct.Scaled, tiled.Scaled).MaxAbs()

		gr, err := linalg.SVDGolubReinsch(direct.Scaled)
		if err != nil {
			return nil, err
		}
		jac := linalg.SVDJacobi(direct.Scaled)
		dSV := 0.0
		for i := range gr.S {
			if d := math.Abs(gr.S[i] - jac.S[i]); d > dSV {
				dSV = d
			}
		}

		rowFirst, err := rowFirstStandardize(w)
		if err != nil {
			return nil, err
		}
		dOrder := matrix.Sub(direct.Scaled, rowFirst.Scaled).MaxAbs()

		r, err := core.TMA(c.env)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%.2e", dTiling),
			fmt.Sprintf("%.2e", dSV),
			fmt.Sprintf("%.2e", dOrder),
			fmt.Sprintf("%d/%d", direct.Iterations, rowFirst.Iterations),
			f4(r.TMA),
			f4(core.MeanColumnAngle(c.env)),
		})
	}
	return []*Table{t}, nil
}

// rowFirstStandardize runs the Eq. 9 iteration with the opposite
// normalization order by transposing: balancing Aᵀ column-first is balancing
// A row-first; transposing back swaps the roles of D1/D2.
func rowFirstStandardize(a *matrix.Dense) (*sinkhorn.Result, error) {
	t, m := a.Dims()
	rt, ct := sinkhorn.StandardTargets(t, m)
	res, err := sinkhorn.Balance(a.T(), sinkhorn.Options{
		RowTarget: ct, ColTarget: rt, Tol: sinkhorn.DefaultTol,
	})
	if err != nil {
		return nil, err
	}
	res.Scaled = res.Scaled.T()
	res.D1, res.D2 = res.D2, res.D1
	return res, nil
}

// Ex5Search extends EX1 with the search-based mappers of Braun et al.: on
// the SPEC-derived environments, how much makespan do GA and SA recover over
// the best greedy/batch heuristic, and at what cost? The paper's companion
// comparison found GA the strongest mapper; the expected shape is a modest
// improvement over Min-Min that shrinks as affinity falls.
func Ex5Search() ([]*Table, error) {
	rng := rand.New(rand.NewSource(103))
	t := &Table{
		ID:    "EX5",
		Title: "Search mappers vs the greedy/batch suite (makespan relative to Min-Min)",
		Notes: []string{
			"workload: 6 instances of every task type, shuffled; GA 100x200, SA 20k steps",
		},
		Header: []string{"environment", "Min-Min", "Sufferage", "Duplex", "GA", "SA"},
	}
	envs := []struct {
		name string
		env  *etcmat.Env
	}{
		{"SPEC CINT (TMA 0.07)", spec.CINT2006Rate()},
		{"SPEC CFP  (TMA 0.11)", spec.CFP2006Rate()},
		{"high affinity (TMA 0.6)", highAffinityEnv()},
	}
	for _, c := range envs {
		in, err := sched.UniformWorkload(c.env, 6, rng)
		if err != nil {
			return nil, err
		}
		mm, err := (sched.MinMin{}).Map(in)
		if err != nil {
			return nil, err
		}
		row := []string{c.name, "1.00"}
		for _, h := range []sched.Heuristic{
			sched.Sufferage{}, sched.Duplex{},
			sched.GA{Population: 100, Generations: 200, Seed: 11},
			sched.SA{Iterations: 20000, Seed: 11},
		} {
			s, err := h.Map(in)
			if err != nil {
				return nil, err
			}
			row = append(row, f2(s.Makespan/mm.Makespan))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

func highAffinityEnv() *etcmat.Env {
	g, err := gen.Targeted(gen.Target{
		Tasks: 12, Machines: 5, MPH: 0.8, TDH: 0.9, TMA: 0.6,
	}, rand.New(rand.NewSource(104)))
	if err != nil {
		panic(err)
	}
	return g.Env
}

func randomPositiveEnv(t, m int, seed int64) *etcmat.Env {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, t)
	for i := range rows {
		rows[i] = make([]float64, m)
		for j := range rows[i] {
			rows[i][j] = 0.1 + rng.Float64()*10
		}
	}
	return etcmat.MustFromECS(rows)
}
