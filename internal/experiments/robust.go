package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/sched"
	"repro/internal/spec"
)

// Ex12Robustness studies the robustness/makespan trade-off across the
// heuristic suite — the first author's stated research focus ("robust
// heterogeneous computing systems") applied on top of the measures. For each
// environment we report, per heuristic, the makespan (relative to the best)
// and the normalized robustness radius at tau = 1.2 (how much collective
// ETC estimation error the schedule absorbs before the makespan promise
// breaks, as a fraction of the makespan). The classic shape: Max-Min's
// front-loading of long tasks buys robustness on the critical machine at
// some makespan cost, while MET's pile-ups are fragile as well as slow.
func Ex12Robustness() ([]*Table, error) {
	rng := rand.New(rand.NewSource(110))
	heuristics := []sched.Heuristic{
		sched.MCT{}, sched.MinMin{}, sched.MaxMin{}, sched.Sufferage{},
	}
	t := &Table{
		ID:    "EX12",
		Title: "Makespan vs robustness at tau=1.2 (per cell: relMakespan / normRobustness)",
		Notes: []string{
			"workload: 8 instances per task type; robustness = min machine radius / makespan",
		},
	}
	t.Header = []string{"environment"}
	for _, h := range heuristics {
		t.Header = append(t.Header, h.Name())
	}

	type namedEnv struct {
		name string
		in   *sched.Instance
	}
	var cases []namedEnv
	specIn, err := sched.UniformWorkload(spec.CINT2006Rate(), 8, rng)
	if err != nil {
		return nil, err
	}
	cases = append(cases, namedEnv{"SPEC CINT", specIn})
	for _, c := range []struct {
		name          string
		mph, tdh, tma float64
	}{
		{"homogeneous", 0.95, 0.9, 0.02},
		{"heterogeneous", 0.4, 0.6, 0.3},
	} {
		g, err := gen.Targeted(gen.Target{Tasks: 12, Machines: 6, MPH: c.mph, TDH: c.tdh, TMA: c.tma}, rng)
		if err != nil {
			return nil, err
		}
		in, err := sched.UniformWorkload(g.Env, 8, rng)
		if err != nil {
			return nil, err
		}
		cases = append(cases, namedEnv{c.name, in})
	}

	for _, c := range cases {
		var schedules []*sched.Schedule
		best := 0.0
		for i, h := range heuristics {
			s, err := h.Map(c.in)
			if err != nil {
				return nil, err
			}
			schedules = append(schedules, s)
			if i == 0 || s.Makespan < best {
				best = s.Makespan
			}
		}
		row := []string{c.name}
		for _, s := range schedules {
			r, err := sched.RobustnessRadius(c.in, s, 1.2)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f / %.4f", s.Makespan/best, r.NormalizedRobustness(s)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}
