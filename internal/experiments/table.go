// Package experiments regenerates every figure and worked example of the
// reproduced paper's evaluation, plus the three extension studies listed in
// DESIGN.md. Each experiment returns one or more Tables; cmd/hcbench renders
// them, and EXPERIMENTS.md records paper-versus-measured values.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a renderable experiment result: a title, explanatory notes, a
// header row and data rows.
type Table struct {
	ID     string
	Title  string
	Notes  []string
	Header []string
	Rows   [][]string
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "   %s\n", n); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for j, h := range t.Header {
		widths[j] = len(h)
	}
	for _, row := range t.Rows {
		for j, cell := range row {
			if j < len(widths) && len(cell) > widths[j] {
				widths[j] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for j, c := range cells {
			w := 0
			if j < len(widths) {
				w = widths[j]
			}
			parts[j] = pad(c, w)
		}
		_, err := fmt.Fprintf(w, "   %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for j := range sep {
		sep[j] = strings.Repeat("-", widths[j])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// RenderMarkdown writes the table as GitHub-flavored markdown, for pasting
// into EXPERIMENTS.md or issue reports.
func (t *Table) RenderMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "**%s: %s**\n\n", t.ID, t.Title); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "*%s*\n\n", n); err != nil {
			return err
		}
	}
	row := func(cells []string) error {
		escaped := make([]string, len(cells))
		for i, c := range cells {
			escaped[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(escaped, " | "))
		return err
	}
	if err := row(t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	if err := row(sep); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// f formats a float with 4 decimals for table cells.
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

// f2 formats a float with 2 decimals (the paper's reporting precision).
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Experiment couples an ID with its runner.
type Experiment struct {
	ID   string
	Desc string
	Run  func() ([]*Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"FIG1", "machine performance = ECS column sums", Fig1},
		{"FIG2", "MPH vs R, G, COV on four contrived environments", Fig2},
		{"FIG3", "equal machine performance, contrasting affinity", Fig3},
		{"FIG4", "eight extreme 2x2 environments spanning the measure space", Fig4},
		{"FIG5", "the five SPEC machines", Fig5},
		{"FIG6", "SPEC CINT2006Rate measures and convergence", Fig6},
		{"FIG7", "SPEC CFP2006Rate measures and convergence", Fig7},
		{"FIG8", "2x2 ETC extractions with contrasting affinity", Fig8},
		{"EQ10", "a decomposable matrix that cannot be standardized", Eq10},
		{"EX1", "heuristic selection vs heterogeneity (extension)", Ex1Heuristics},
		{"EX2", "what-if task/machine removal (extension)", Ex2WhatIf},
		{"EX3", "targeted generator spans the measure space (extension)", Ex3Generator},
		{"EX4", "ablations: tiling vs direct, SVD algorithms, normalization order", Ex4Ablation},
		{"EX5", "search mappers (GA, SA) vs the greedy/batch suite (extension)", Ex5Search},
		{"EX6", "predicting scheduling performance from the measures (extension)", Ex6Prediction},
		{"EX7", "ETC consistency classes vs the measures (extension)", Ex7Consistency},
		{"EX8", "dynamic (online-arrival) policy selection vs heterogeneity (extension)", Ex8Dynamic},
		{"EX9", "weighting factors reshape the measures (paper Sec. II-C)", Ex9Weights},
		{"EX10", "independence: column-only affinity (ref [2]) vs standard-form TMA", Ex10Independence},
		{"EX11", "immediate vs batch dynamic mapping across load (extension)", Ex11BatchMode},
		{"EX12", "makespan vs robustness trade-off across heuristics (extension)", Ex12Robustness},
		{"EX13", "the twelve Braun et al. ETC classes in measure space (extension)", Ex13BraunClasses},
	}
}

// ByID returns the experiment with the given ID, or false.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}
