package experiments

import (
	"context"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// Result is the outcome of one experiment run by the engine.
type Result struct {
	Experiment
	Tables []*Table
	Err    error
}

// RunAll executes the given experiments on up to workers goroutines
// (non-positive selects GOMAXPROCS) and returns their results in input
// order, so concurrent and sequential runs render identically. A failing
// experiment is reported in its Result rather than aborting the set; only
// context cancellation stops the engine early, marking the experiments that
// never ran with the context's error.
//
// When ctx carries an obs.Trace, each experiment's wall time is recorded as
// a span named by its ID, so a traced sweep shows where the minutes went.
func RunAll(ctx context.Context, exps []Experiment, workers int) []Result {
	if ctx == nil {
		ctx = context.Background()
	}
	out, err := parallel.Map(ctx, len(exps), workers, func(ctx context.Context, i int) (Result, error) {
		sp := obs.StartSpan(ctx, exps[i].ID)
		defer sp.End()
		r := Result{Experiment: exps[i]}
		r.Tables, r.Err = exps[i].Run()
		return r, nil
	})
	if err != nil {
		// Cancellation: entries that never ran carry no ID; attribute the
		// context error so callers can tell "skipped" from "failed".
		for i := range out {
			if out[i].ID == "" {
				out[i].Experiment = exps[i]
				out[i].Err = err
			}
		}
	}
	return out
}
