package experiments

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/etcmat"
	"repro/internal/matrix"
	"repro/internal/sinkhorn"
	"repro/internal/spec"
)

// Fig1 reproduces Figure 1: machine performance is the ECS column sum; the
// paper states machine 1's performance is 17 (matrix cells reconstructed,
// see DESIGN.md §6).
func Fig1() ([]*Table, error) {
	env := etcmat.MustFromECS([][]float64{
		{2, 3, 8},
		{6, 5, 7},
		{4, 2, 9},
		{5, 1, 6},
	})
	mp := core.MachinePerformances(env)
	t := &Table{
		ID:     "FIG1",
		Title:  "Machine performance = ECS column sum (paper: MP_1 = 17)",
		Notes:  []string{"matrix reconstructed to the paper's stated MP_1 = 17"},
		Header: []string{"machine", "MP_j", "paper"},
	}
	paper := []string{"17", "-", "-"}
	for j, v := range mp {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("m%d", j+1), fmt.Sprintf("%g", v), paper[j]})
	}
	t.Rows = append(t.Rows, []string{"MPH", f4(core.MPH(env)), "-"})
	return []*Table{t}, nil
}

// Fig2 reproduces Figure 2 exactly: the four 5-machine environments and the
// published MPH, R, G and COV values.
func Fig2() ([]*Table, error) {
	type env2 struct {
		name  string
		perfs []float64
		paper [4]float64 // MPH, R, G, COV
	}
	cases := []env2{
		{"1, 2, 4, 8, 16", []float64{1, 2, 4, 8, 16}, [4]float64{0.5, 0.06, 0.5, 0.88}},
		{"1, 1, 1, 1, 16", []float64{1, 1, 1, 1, 16}, [4]float64{0.77, 0.06, 0.5, 1.5}},
		{"1, 16, 16, 16, 16", []float64{1, 16, 16, 16, 16}, [4]float64{0.77, 0.06, 0.5, 0.46}},
		{"1, 4, 4, 4, 16", []float64{1, 4, 4, 4, 16}, [4]float64{0.63, 0.06, 0.5, 0.90}},
	}
	t := &Table{
		ID:    "FIG2",
		Title: "MPH vs R, G, COV on the four environments (paper values in parens)",
		Notes: []string{
			"only MPH separates env1 (most heterogeneous) from env4 from env2/env3",
		},
		Header: []string{"environment", "MPH", "R", "G", "COV"},
	}
	for _, c := range cases {
		e := etcmat.MustFromECS([][]float64{c.perfs})
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%s (%.2f)", f2(core.MPH(e)), c.paper[0]),
			fmt.Sprintf("%s (%.2f)", f2(core.RatioR(e)), c.paper[1]),
			fmt.Sprintf("%s (%.2f)", f2(core.GeoMeanG(e)), c.paper[2]),
			fmt.Sprintf("%s (%.2f)", f2(core.COV(e)), c.paper[3]),
		})
	}
	return []*Table{t}, nil
}

// Fig3 reproduces Figure 3: two environments with identical (perfectly
// homogeneous) machine performance but contrasting task-machine affinity.
func Fig3() ([]*Table, error) {
	a := etcmat.MustFromECS([][]float64{{1, 1, 1}, {2, 2, 2}, {3, 3, 3}})
	b := etcmat.MustFromECS([][]float64{{4, 1, 1}, {1, 4, 1}, {1, 1, 4}})
	t := &Table{
		ID:    "FIG3",
		Title: "Equal machine performance, contrasting affinity (matrices reconstructed)",
		Notes: []string{
			"(a) proportional columns: no affinity; (b) diagonally dominant: affinity",
		},
		Header: []string{"matrix", "MPH", "TMA"},
	}
	for _, c := range []struct {
		name string
		env  *etcmat.Env
	}{{"(a)", a}, {"(b)", b}} {
		r, err := core.TMA(c.env)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{c.name, f4(core.MPH(c.env)), f4(r.TMA)})
	}
	return []*Table{t}, nil
}

// Fig4Envs returns the eight reconstructed extreme 2x2 environments, keyed
// A..H in the paper's layout.
func Fig4Envs() map[string]*etcmat.Env {
	return map[string]*etcmat.Env{
		"A": etcmat.MustFromECS([][]float64{{0, 10}, {1, 9}}),
		"B": etcmat.MustFromECS([][]float64{{0, 1}, {4, 95}}),
		"C": etcmat.MustFromECS([][]float64{{1, 0}, {0, 1}}),
		"D": etcmat.MustFromECS([][]float64{{10, 0}, {45, 55}}),
		"E": etcmat.MustFromECS([][]float64{{0.1, 9.9}, {0.1, 9.9}}),
		"F": etcmat.MustFromECS([][]float64{{0.01, 0.99}, {0.99, 98.01}}),
		"G": etcmat.MustFromECS([][]float64{{1, 1}, {1, 1}}),
		"H": etcmat.MustFromECS([][]float64{{0.1, 0.1}, {9.9, 9.9}}),
	}
}

// Fig4 reproduces Figure 4: eight extreme 2x2 ECS matrices spanning the
// corners of the (MPH, TDH, TMA) space. The paper states A-D have TMA = 1
// (A, B, D converge to C's standard form), E-H have TMA = 0, C/D/G/H have
// high MPH, and A/C/E/G have high TDH.
func Fig4() ([]*Table, error) {
	envs := Fig4Envs()
	expect := map[string][3]string{ // MPH, TDH, TMA qualitative targets
		"A": {"low", "high", "1"}, "B": {"low", "low", "1"},
		"C": {"high", "high", "1"}, "D": {"high", "low", "1"},
		"E": {"low", "high", "0"}, "F": {"low", "low", "0"},
		"G": {"high", "high", "0"}, "H": {"high", "low", "0"},
	}
	t := &Table{
		ID:     "FIG4",
		Title:  "Extreme 2x2 environments (matrices reconstructed to the stated profile)",
		Header: []string{"matrix", "MPH", "TDH", "TMA", "paper profile (MPH,TDH,TMA)"},
	}
	for _, name := range []string{"A", "B", "C", "D", "E", "F", "G", "H"} {
		p := core.Characterize(envs[name])
		if p.TMAErr != nil {
			return nil, p.TMAErr
		}
		e := expect[name]
		t.Rows = append(t.Rows, []string{
			name, f4(p.MPH), f4(p.TDH), f4(p.TMA),
			fmt.Sprintf("%s, %s, %s", e[0], e[1], e[2]),
		})
	}
	return []*Table{t}, nil
}

// Fig5 lists the five machines of Figure 5.
func Fig5() ([]*Table, error) {
	t := &Table{
		ID:     "FIG5",
		Title:  "The five machines used from the SPEC benchmarks",
		Header: []string{"id", "machine"},
	}
	for _, m := range spec.Machines() {
		t.Rows = append(t.Rows, []string{m.ID, m.Description})
	}
	return []*Table{t}, nil
}

func suiteTables(id, title string, env *etcmat.Env, paperTDH, paperMPH float64, paperTMA string, paperIters int) ([]*Table, error) {
	p := core.Characterize(env)
	if p.TMAErr != nil {
		return nil, p.TMAErr
	}
	head := &Table{
		ID:    id,
		Title: title,
		Notes: []string{
			"dataset synthesized and calibrated to the published measures (DESIGN.md §2)",
		},
		Header: []string{"measure", "measured", "paper"},
		Rows: [][]string{
			{"TDH", f2(p.TDH), f2(paperTDH)},
			{"MPH", f2(p.MPH), f2(paperMPH)},
			{"TMA", f2(p.TMA), paperTMA},
			{"normalization iterations @1e-8", fmt.Sprintf("%d", p.SinkhornIterations), fmt.Sprintf("%d", paperIters)},
		},
	}
	etc := env.ETC()
	data := &Table{
		ID:     id,
		Title:  "peak runtimes (seconds, synthesized)",
		Header: append([]string{"task"}, env.MachineNames()...),
	}
	for i, name := range env.TaskNames() {
		row := []string{name}
		for j := 0; j < env.Machines(); j++ {
			row = append(row, fmt.Sprintf("%.0f", etc.At(i, j)))
		}
		data.Rows = append(data.Rows, row)
	}
	return []*Table{head, data}, nil
}

// Fig6 reproduces Figure 6: the SPEC CINT2006Rate environment.
func Fig6() ([]*Table, error) {
	return suiteTables("FIG6", "SPEC CINT2006Rate (12 task types x 5 machines)",
		spec.CINT2006Rate(), spec.CINTTDH, spec.CINTMPH, f2(spec.CINTTMA), 6)
}

// Fig7 reproduces Figure 7: the SPEC CFP2006Rate environment. The paper's
// printed TMA digits are lost; it states TMA(CFP) > TMA(CINT).
func Fig7() ([]*Table, error) {
	return suiteTables("FIG7", "SPEC CFP2006Rate (17 task types x 5 machines)",
		spec.CFP2006Rate(), spec.CFPTDH, spec.CFPMPH, "> TMA(CINT) (digits lost)", 7)
}

// Fig8 reproduces Figure 8: the two 2x2 ETC extractions.
func Fig8() ([]*Table, error) {
	t := &Table{
		ID:    "FIG8",
		Title: "2x2 ETC extractions (paper values in parens; (b) TDH/MPH digits lost)",
		Header: []string{
			"matrix", "tasks x machines", "TDH", "MPH", "TMA",
		},
	}
	for _, c := range []struct {
		name     string
		env      *etcmat.Env
		paperTDH string
		paperMPH string
		paperTMA string
	}{
		{"(a)", spec.Fig8a(), "0.16", "0.31", "0.05"},
		{"(b)", spec.Fig8b(), "lost", "lost", "0.60"},
	} {
		p := core.Characterize(c.env)
		if p.TMAErr != nil {
			return nil, p.TMAErr
		}
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("{%s} x {%s}", join(c.env.TaskNames()), join(c.env.MachineNames())),
			fmt.Sprintf("%s (%s)", f2(p.TDH), c.paperTDH),
			fmt.Sprintf("%s (%s)", f2(p.MPH), c.paperMPH),
			fmt.Sprintf("%s (%s)", f2(p.TMA), c.paperTMA),
		})
	}
	return []*Table{t}, nil
}

func join(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// Eq10 reproduces the Section VI worked example: the 3x3 matrix of Eq. 10 is
// decomposable (Eq. 12 exhibits the block form), so no finite row/column
// scaling standardizes it; the raw Eq. 9 iteration stalls at the paper's
// tolerance while the entrywise limit loses two entries.
func Eq10() ([]*Table, error) {
	a := matrix.FromRows([][]float64{
		{0, 1, 0},
		{1, 0, 1},
		{0, 1, 1},
	})
	p := bipartite.PatternOf(a, 0)
	all, _ := p.TotalSupport()
	raw, rawErr := sinkhorn.Balance(a, sinkhorn.Options{RowTarget: 1, ColTarget: 1, MaxIter: 2000})
	t := &Table{
		ID:    "EQ10",
		Title: "The decomposable Eq. 10 matrix cannot be standardized",
		Notes: []string{
			"paper: no combination of row/column normalizations reaches standard form",
		},
		Header: []string{"diagnostic", "result", "paper"},
	}
	t.Rows = append(t.Rows,
		[]string{"has support (positive diagonal)", fmt.Sprintf("%v", p.HasSupport()), "-"},
		[]string{"has total support", fmt.Sprintf("%v", all), "false (argued)"},
		[]string{"fully indecomposable", fmt.Sprintf("%v", p.FullyIndecomposable()), "false (Eq. 12)"},
		[]string{"raw Eq. 9 converged @1e-8 in 2000 iters", fmt.Sprintf("%v", rawErr == nil), "does not converge"},
		[]string{"max deviation after 2000 iters", fmt.Sprintf("%.2e", raw.MaxDeviation), "-"},
	)
	// The extension beyond the paper: the entrywise limit exists; evaluating
	// TMA there is the paper's stated future work.
	env := etcmat.MustFromECS([][]float64{{0, 1, 0}, {1, 0, 1}, {0, 1, 1}})
	r, err := core.TMA(env)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		[]string{"entries vanishing in the entrywise limit", fmt.Sprintf("%d", r.Trimmed), "-"},
		[]string{"TMA of the entrywise limit (extension)", f4(r.TMA), "future work"},
	)
	return []*Table{t}, nil
}
