GO ?= go

.PHONY: build test vet race bench bench-json verify clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race detector is the gate for the worker pool, the experiment engine
# and the Env memo; keep it in the verify path.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable kernel/engine benchmarks (see cmd/hcbench -bench).
bench-json:
	$(GO) run ./cmd/hcbench -bench BENCH_kernels.json

verify: build vet test race

clean:
	$(GO) clean ./...
