GO ?= go

# benchdiff inputs: OLD is the committed baseline, NEW a fresh report.
BENCH_OLD ?= BENCH_spectral.json
BENCH_NEW ?= BENCH_new.json
# Serving-tier benchdiff inputs (cmd/hcload reports; diffed when NEW exists).
BENCH_SERVE_OLD ?= BENCH_serve.json
BENCH_SERVE_NEW ?= BENCH_serve_new.json
# Fleet-scale sweep inputs (cmd/hcbench -scalebench; diffed when NEW exists).
BENCH_SCALE_OLD ?= BENCH_scale.json
BENCH_SCALE_NEW ?= BENCH_scale_new.json
# Matrix edges for `make scalebench`. The default full sweep takes tens of
# minutes (the 4k/10k rows are informational); the gated 1k row alone runs in
# well under a minute with SCALE_SIZES=1000.
SCALE_SIZES ?= 1000,4000,10000
# Fractional ns/op or allocs/op growth that fails benchdiff (0.20 = 20%).
BENCH_THRESHOLD ?= 0.20
# Opt-in warm-p99 gate for serving reports: GATEP99=1 make benchdiff. The
# threshold is deliberately generous (3.0 = +300%) — tails on a loaded box
# are noisy; the gate exists to catch order-of-magnitude collapses.
GATEP99 ?=
BENCH_P99_THRESHOLD ?= 3.0
P99_FLAGS = $(if $(GATEP99),-gatep99 -p99threshold $(BENCH_P99_THRESHOLD),)

.PHONY: build test vet race lint bench bench-json benchdiff scalebench verify clean serve loadtest wirebench clusterload streamload churnload fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race detector is the gate for the worker pool, the experiment engine
# and the Env memo; keep it in the verify path.
race:
	$(GO) test -race ./...

# Static analysis beyond vet. staticcheck and govulncheck are optional
# locally (CI installs and runs them unconditionally); when a tool is not on
# PATH the target notes the skip instead of failing, so `make verify` stays
# runnable on minimal machines.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable kernel/engine benchmarks (see cmd/hcbench -bench).
bench-json:
	$(GO) run ./cmd/hcbench -bench BENCH_kernels.json

# Compare two benchmark reports and fail on >BENCH_THRESHOLD regressions in
# ns/op or allocs/op per kernel. Typical use:
#   go run ./cmd/hcbench -bench BENCH_new.json && make benchdiff
# The same command gates serving reports (kind auto-detected): when a fresh
# $(BENCH_SERVE_NEW) exists — produced by `make loadtest LOAD_OUT=$(BENCH_SERVE_NEW)`
# against a running server — it is diffed against the committed baseline too,
# failing on a warm-phase p50 regression or a broken coalescing invariant.
benchdiff:
	$(GO) run ./cmd/hcbench -benchdiff -threshold $(BENCH_THRESHOLD) $(BENCH_OLD) $(BENCH_NEW)
	@if [ -f $(BENCH_SERVE_NEW) ]; then \
		$(GO) run ./cmd/hcbench -benchdiff -threshold $(BENCH_THRESHOLD) $(P99_FLAGS) $(BENCH_SERVE_OLD) $(BENCH_SERVE_NEW); \
	fi
	@if [ -f $(BENCH_SCALE_NEW) ]; then \
		$(GO) run ./cmd/hcbench -benchdiff -threshold $(BENCH_THRESHOLD) $(BENCH_SCALE_OLD) $(BENCH_SCALE_NEW); \
	fi

# Fleet-scale sweep: re-measure the large-matrix kernels and diff against the
# committed BENCH_scale.json (only the 1k records gate; see cmd/hcbench
# -scalebench). Refresh the baseline by copying $(BENCH_SCALE_NEW) over it.
scalebench:
	$(GO) run ./cmd/hcbench -scalebench $(BENCH_SCALE_NEW) -sizes $(SCALE_SIZES)
	$(GO) run ./cmd/hcbench -benchdiff -threshold $(BENCH_THRESHOLD) $(BENCH_SCALE_OLD) $(BENCH_SCALE_NEW)

verify: build vet lint test race
# Opt-in perf gate: BENCHDIFF=1 make verify additionally re-measures the
# kernels and diffs them against the committed baseline.
ifneq ($(BENCHDIFF),)
verify: perf-verify
.PHONY: perf-verify
perf-verify:
	$(GO) run ./cmd/hcbench -bench $(BENCH_NEW)
	$(GO) run ./cmd/hcbench -benchdiff -threshold $(BENCH_THRESHOLD) $(BENCH_OLD) $(BENCH_NEW)
endif

# Serving tier (see API.md). SERVE_FLAGS passes extra hcserved flags, e.g.
#   make serve SERVE_FLAGS="-addr :9090 -queue 16"
serve:
	$(GO) run ./cmd/hcserved $(SERVE_FLAGS)

# Load-test a running hcserved and write the serving benchmark report.
# The committed BENCH_serve.json baseline was produced with these settings
# against `go run ./cmd/hcserved -queue 8` on a single-CPU host.
LOAD_URL ?= http://localhost:8080
LOAD_OUT ?= BENCH_serve.json
loadtest:
	$(GO) run ./cmd/hcload -url $(LOAD_URL) -c 4 -n 300 -tasks 150 -machines 80 -seed 1 -surge 96 -out $(LOAD_OUT)

# Decode micro-benchmarks: stdlib JSON vs streaming scanner vs binary frame
# at the loadtest shape (150x80), merged into the serving report's
# decode_bench section so the numbers live next to the latencies they explain.
wirebench:
	$(GO) run ./cmd/hcbench -wirebench $(LOAD_OUT)

# Full serving-report regen: classic single-node suite + decode
# micro-benchmarks + the 3-node cluster suite (replica-read phases, the
# join/leave churn cycle against a 4th node, mid-run SIGTERM, accounting
# invariant), all merged into $(LOAD_OUT). Servers are started and torn down
# by the script; nothing needs to be running beforehand.
clusterload:
	scripts/clusterload.sh $(LOAD_OUT)

# Quick churn/replica check: 3-node cluster + standalone joiner, runs the
# replica and churn phases and prints both scorecards (handoff reconcile,
# warm hit rate, zero-lost leave, single-vs-p2c tails). Pass a path to keep
# the full report: scripts/churnload.sh out.json
churnload:
	scripts/churnload.sh

# Quick streaming-suite check: standalone server, stream phases only, prints
# the stream scorecard (p50 speedup + accounting). Pass a path to keep the
# full report: scripts/streamload.sh out.json
streamload:
	scripts/streamload.sh

# Short fuzz run of the binary frame decoder (the CI smoke step).
fuzz-smoke:
	$(GO) test -run Fuzz -fuzz=FuzzWireDecode -fuzztime=10s ./internal/wire

clean:
	$(GO) clean ./...
